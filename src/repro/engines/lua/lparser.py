"""Recursive-descent parser for the MiniLua subset.

Supported statements: ``local`` declarations, assignment, function
declarations (global and local), calls, ``if``/``elseif``/``else``,
``while``, ``repeat``/``until``, numeric ``for``, ``return`` and
``break``.  Expressions follow Lua's operator precedences.
"""

from repro.engines.lua import last as ast
from repro.engines.lua.lexer import LuaSyntaxError, tokenize

# Lua binary-operator precedences: (left, right).  Right-associative
# operators have right < left.
_BINARY_PRECEDENCE = {
    "or": (1, 1), "and": (2, 2),
    "<": (3, 3), ">": (3, 3), "<=": (3, 3), ">=": (3, 3),
    "~=": (3, 3), "==": (3, 3),
    "|": (4, 4), "~": (5, 5), "&": (6, 6),
    "<<": (7, 7), ">>": (7, 7),
    "..": (9, 8),  # right associative
    "+": (10, 10), "-": (10, 10),
    "*": (11, 11), "/": (11, 11), "//": (11, 11), "%": (11, 11),
    "^": (14, 13),  # right associative
}
_UNARY_PRECEDENCE = 12


class Parser:
    """Parses a token list into an :class:`~repro.engines.lua.last.Block`."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.pos]

    def error(self, message):
        raise LuaSyntaxError("line %d: %s (got %r)"
                             % (self.current.line, message,
                                self.current.value))

    def advance(self):
        token = self.current
        self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            self.error("expected %s %r" % (kind, value))
        return token

    # -- blocks and statements ------------------------------------------------
    _BLOCK_ENDERS = frozenset(["end", "else", "elseif", "until"])

    def parse_chunk(self):
        block = self.parse_block()
        if self.current.kind != "eof":
            self.error("unexpected trailing input")
        return block

    def parse_block(self):
        statements = []
        while True:
            if self.accept("op", ";"):
                continue
            token = self.current
            if token.kind == "eof" or (token.kind == "keyword"
                                       and token.value in self._BLOCK_ENDERS):
                return ast.Block(statements)
            statements.append(self.parse_statement())

    def parse_statement(self):
        token = self.current
        if token.kind == "keyword":
            handler = {
                "local": self._parse_local,
                "if": self._parse_if,
                "while": self._parse_while,
                "repeat": self._parse_repeat,
                "for": self._parse_for,
                "function": self._parse_function_decl,
                "return": self._parse_return,
                "break": self._parse_break,
                "do": self._parse_do,
            }.get(token.value)
            if handler is None:
                self.error("unexpected keyword")
            return handler()
        return self._parse_expr_statement()

    def _parse_local(self):
        self.expect("keyword", "local")
        if self.check("keyword", "function"):
            self.advance()
            name = self.expect("name").value
            func = self._parse_function_body(name)
            return ast.FunctionDecl(name, func, is_local=True)
        names = [self.expect("name").value]
        while self.accept("op", ","):
            names.append(self.expect("name").value)
        values = []
        if self.accept("op", "="):
            values.append(self.parse_expression())
            while self.accept("op", ","):
                values.append(self.parse_expression())
        if len(names) == 1 and len(values) <= 1:
            return ast.LocalAssign(names[0],
                                   values[0] if values else None)
        return ast.MultiLocal(names, values)

    def _parse_if(self):
        self.expect("keyword", "if")
        clauses = []
        condition = self.parse_expression()
        self.expect("keyword", "then")
        clauses.append((condition, self.parse_block()))
        orelse = None
        while True:
            if self.accept("keyword", "elseif"):
                condition = self.parse_expression()
                self.expect("keyword", "then")
                clauses.append((condition, self.parse_block()))
                continue
            if self.accept("keyword", "else"):
                orelse = self.parse_block()
            self.expect("keyword", "end")
            return ast.If(clauses, orelse)

    def _parse_while(self):
        self.expect("keyword", "while")
        condition = self.parse_expression()
        self.expect("keyword", "do")
        body = self.parse_block()
        self.expect("keyword", "end")
        return ast.While(condition, body)

    def _parse_repeat(self):
        self.expect("keyword", "repeat")
        body = self.parse_block()
        self.expect("keyword", "until")
        condition = self.parse_expression()
        return ast.Repeat(body, condition)

    def _parse_for(self):
        self.expect("keyword", "for")
        var = self.expect("name").value
        if self.check("op", ",") or self.check("keyword", "in"):
            names = [var]
            while self.accept("op", ","):
                names.append(self.expect("name").value)
            self.expect("keyword", "in")
            iterator = self.parse_expression()
            self.expect("keyword", "do")
            body = self.parse_block()
            self.expect("keyword", "end")
            return ast.GenericFor(names, iterator, body)
        self.expect("op", "=")
        start = self.parse_expression()
        self.expect("op", ",")
        stop = self.parse_expression()
        step = None
        if self.accept("op", ","):
            step = self.parse_expression()
        self.expect("keyword", "do")
        body = self.parse_block()
        self.expect("keyword", "end")
        return ast.NumericFor(var, start, stop, step, body)

    def _parse_function_decl(self):
        self.expect("keyword", "function")
        name = self.expect("name").value
        func = self._parse_function_body(name)
        return ast.FunctionDecl(name, func, is_local=False)

    def _parse_function_body(self, name=None):
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                params.append(self.expect("name").value)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        self.expect("keyword", "end")
        return ast.FunctionExpr(params, body, name=name)

    def _parse_return(self):
        self.expect("keyword", "return")
        token = self.current
        if token.kind == "eof" or (token.kind == "keyword"
                                   and token.value in self._BLOCK_ENDERS):
            return ast.Return(None)
        return ast.Return(self.parse_expression())

    def _parse_break(self):
        self.expect("keyword", "break")
        return ast.Break()

    def _parse_do(self):
        self.expect("keyword", "do")
        block = self.parse_block()
        self.expect("keyword", "end")
        return block

    def _parse_expr_statement(self):
        expr = self._parse_prefix_expr()
        targets = [expr]
        while self.accept("op", ","):
            targets.append(self._parse_prefix_expr())
        if self.accept("op", "="):
            for target in targets:
                if not isinstance(target, (ast.Name, ast.Index)):
                    self.error("cannot assign to this expression")
            values = [self.parse_expression()]
            while self.accept("op", ","):
                values.append(self.parse_expression())
            if len(targets) == 1 and len(values) == 1:
                return ast.Assign(targets[0], values[0])
            return ast.MultiAssign(targets, values)
        if len(targets) != 1 or not isinstance(expr, ast.Call):
            self.error("expression statement must be a call or assignment")
        return ast.CallStat(expr)

    # -- expressions -----------------------------------------------------------
    def parse_expression(self, limit=0):
        token = self.current
        if token.kind == "op" and token.value in ("-", "#", "~"):
            self.advance()
            operand = self.parse_expression(_UNARY_PRECEDENCE)
            left = ast.UnOp(token.value, operand)
        elif token.kind == "keyword" and token.value == "not":
            self.advance()
            operand = self.parse_expression(_UNARY_PRECEDENCE)
            left = ast.UnOp("not", operand)
        else:
            left = self._parse_simple_expr()
        while True:
            token = self.current
            op = token.value if token.kind in ("op", "keyword") else None
            precedence = _BINARY_PRECEDENCE.get(op)
            if precedence is None or precedence[0] <= limit:
                return left
            self.advance()
            right = self.parse_expression(precedence[1])
            left = ast.BinOp(op, left, right)

    def _parse_simple_expr(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(token.value)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.value)
        if token.kind == "keyword":
            if token.value == "nil":
                self.advance()
                return ast.NilLit()
            if token.value in ("true", "false"):
                self.advance()
                return ast.BoolLit(token.value == "true")
            if token.value == "function":
                self.advance()
                return self._parse_function_body()
        if self.check("op", "{"):
            return self._parse_table_ctor()
        return self._parse_prefix_expr()

    def _parse_prefix_expr(self):
        token = self.current
        if token.kind == "name":
            self.advance()
            expr = ast.Name(token.value)
        elif self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
        else:
            self.error("unexpected token in expression")
        while True:
            if self.accept("op", "."):
                field = self.expect("name").value
                expr = ast.Index(expr, ast.StringLit(field))
            elif self.accept("op", "["):
                key = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, key)
            elif self.check("op", "("):
                self.advance()
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(expr, args)
            elif self.current.kind == "string":
                # f"literal" call sugar
                expr = ast.Call(expr, [ast.StringLit(self.advance().value)])
            else:
                return expr

    def _parse_table_ctor(self):
        self.expect("op", "{")
        items = []
        fields = []
        while not self.check("op", "}"):
            if self.current.kind == "name" \
                    and self.tokens[self.pos + 1].kind == "op" \
                    and self.tokens[self.pos + 1].value == "=":
                name = self.advance().value
                self.advance()  # '='
                fields.append((name, self.parse_expression()))
            else:
                items.append(self.parse_expression())
            if not (self.accept("op", ",") or self.accept("op", ";")):
                break
        self.expect("op", "}")
        return ast.TableCtor(items, fields)


def parse(source):
    """Parse MiniLua ``source`` into a Block AST."""
    return Parser(tokenize(source)).parse_chunk()
