"""MiniLua: a Lua-5.3-style register VM running on the simulator.

The public entry point is :func:`repro.engines.lua.vm.run_lua`, which
compiles a MiniLua source string, builds the simulated-memory image,
assembles the interpreter for the requested machine configuration and runs
it under the timing model.
"""

from repro.engines.lua.vm import LuaResult, run_lua

__all__ = ["LuaResult", "run_lua"]
