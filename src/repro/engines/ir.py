"""Shared instruction-level IR surface for analyses and sim engines.

Two layers live here, one per instruction set:

**Host-ISA metadata** — the mnemonic classification the basic-block and
superblock-trace engines (:mod:`repro.sim.blocks`,
:mod:`repro.sim.traces`) need to carve a program into compilation
units: which mnemonics terminate a block, the inlinable branch
conditions, and the load/store access shapes.  These used to be
private module state of ``sim/blocks.py``; they are canonical here so
any pass that reasons about the simulated RV64 text (block formation,
trace chaining, future host-level analyses) shares one definition.

**Guest-bytecode views** — a uniform protocol over both engines'
predecoded programs.  :class:`LuaView` (register VM) and
:class:`JsView` (stack VM) decode a function's 32-bit code words once
and answer the queries every bytecode-level analysis needs without
re-deriving per-engine opcode knowledge:

* opcode metadata (``instrs[i].op`` / ``.name`` / ``.args``),
* control flow (:meth:`~BytecodeView.successors`,
  :meth:`~BytecodeView.is_jump_target` via :meth:`~BytecodeView.targets`),
* operand def/use accessors (:meth:`~BytecodeView.reads` /
  :meth:`~BytecodeView.writes`), expressed as ``(kind, index)``
  descriptors — ``"reg"``/``"const"``/``"global"`` slots for Lua,
  ``"local"``/``"const"``/``"global"``/``"stack"`` for JS — plus the
  static stack effect for the stack machine
  (:meth:`JsView.stack_effect`).

The tag-inference pass (:mod:`repro.analysis`) is the first bytecode
consumer; the sim engines consume the host layer.
"""

from collections import namedtuple

# -- host-ISA metadata (canonical; sim/blocks.py and sim/traces.py consume) ----

#: 64-bit register/address mask of the simulated machine.
MASK64 = (1 << 64) - 1

#: Block growth stops after this many instructions even without a
#: terminator; longer blocks buy little and inflate the near-budget
#: single-step window.
MAX_BLOCK_LEN = 64

#: Instructions that always end a block: indirect control flow lands at
#: a fresh dispatch anyway, ``ecall`` may touch arbitrary host state and
#: ``ebreak`` halts the machine.
TERMINATORS = frozenset(["jal", "jalr", "ecall", "ebreak"])

_S = 1 << 63

#: Biased compare: ``to_signed(a) < to_signed(b)`` iff
#: ``(a ^ _S) < (b ^ _S)`` on the unsigned representations.
BRANCH_COND = {
    "beq": "V[%(a)d] == V[%(b)d]",
    "bne": "V[%(a)d] != V[%(b)d]",
    "blt": "(V[%(a)d] ^ %(S)d) < (V[%(b)d] ^ %(S)d)",
    "bge": "(V[%(a)d] ^ %(S)d) >= (V[%(b)d] ^ %(S)d)",
    "bltu": "V[%(a)d] < V[%(b)d]",
    "bgeu": "V[%(a)d] >= V[%(b)d]",
}

#: ``mnemonic -> (width, signed)`` for the integer loads.
LOAD_ARGS = {"lb": (1, True), "lh": (2, True), "lw": (4, True),
             "ld": (8, False), "lbu": (1, False), "lhu": (2, False),
             "lwu": (4, False)}

#: ``mnemonic -> width`` for the integer stores.
STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def block_extent(instructions, start, max_len):
    """The exclusive stop index of the block entered at ``start``:
    truncated at the first terminator, else after ``max_len``."""
    stop = min(len(instructions), start + max_len)
    for j in range(start, stop):
        if instructions[j].mnemonic in TERMINATORS:
            return j + 1
    return stop


# -- guest-bytecode views ------------------------------------------------------

#: One predecoded guest bytecode.  ``op`` is the numeric opcode,
#: ``name`` its mnemonic, ``args`` the decoded operand tuple — Lua
#: ``(a, b, c)`` with the signed jump displacement in ``c`` for jump
#: formats, JS ``(imm,)``.
GuestInstr = namedtuple("GuestInstr", "index op name args")


class BytecodeView:
    """Uniform queries over one predecoded guest function.

    Subclasses decode ``code`` (the function's 32-bit words) into
    :data:`GuestInstr` tuples and answer control-flow and def/use
    queries in engine-neutral vocabulary.
    """

    engine = None

    def __init__(self, code):
        self.instrs = [self._decode(index, word)
                       for index, word in enumerate(code)]

    def __len__(self):
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    def _decode(self, index, word):
        raise NotImplementedError

    def successors(self, index):
        """Intra-function successor indices of instruction ``index``
        (empty for returns, traps and halts; calls fall through — the
        callee edge is interprocedural)."""
        raise NotImplementedError

    def reads(self, index):
        """Operand sources as ``(kind, slot)`` descriptors."""
        raise NotImplementedError

    def writes(self, index):
        """Operand destinations as ``(kind, slot)`` descriptors."""
        raise NotImplementedError

    def targets(self):
        """All branch/jump target indices in this function."""
        found = set()
        for instr in self.instrs:
            succs = self.successors(instr.index)
            for s in succs:
                if s != instr.index + 1:
                    found.add(s)
        return found


class LuaView(BytecodeView):
    """Def/use and successor queries over MiniLua register-VM code.

    RK-encoded operands are resolved at this layer: a ``B``/``C``
    operand with the constant flag set becomes ``("const", index)``,
    otherwise ``("reg", index)``.
    """

    engine = "lua"

    def _decode(self, index, word):
        from repro.engines.lua.opcodes import decode
        op, a, b, c = decode(word)
        return GuestInstr(index, int(op), op.name, (a, b, c))

    @staticmethod
    def _rk(operand):
        from repro.engines.lua.opcodes import rk_index, rk_is_constant
        if rk_is_constant(operand):
            return ("const", rk_index(operand))
        return ("reg", operand)

    def successors(self, index):
        from repro.engines.lua.opcodes import Op
        instr = self.instrs[index]
        op = Op(instr.op)
        a, _b, c = instr.args
        if op in (Op.RETURN, Op.RETURN0):
            return ()
        if op is Op.JMP or op is Op.FORPREP:
            # FORPREP always lands on its matching FORLOOP (the guard
            # only selects the int or coerced-float priming, both of
            # which rejoin the jump).
            return (index + 1 + c,)
        if op in (Op.JMPF, Op.JMPT, Op.FORLOOP):
            return (index + 1, index + 1 + c)
        if not self._implemented(op):
            return ()  # traps to the error stub: execution halts
        return (index + 1,)

    @staticmethod
    def _implemented(op):
        from repro.engines.lua.opcodes import Op
        return op not in (Op.LOADKX, Op.GETUPVAL, Op.SETUPVAL, Op.SELF,
                          Op.TEST, Op.TESTSET, Op.TAILCALL, Op.TFORCALL,
                          Op.TFORLOOP, Op.SETLIST)

    def reads(self, index):
        from repro.engines.lua.opcodes import Op
        instr = self.instrs[index]
        op = Op(instr.op)
        a, b, c = instr.args
        if op is Op.MOVE:
            return (("reg", b),)
        if op is Op.LOADK:
            return (("const", b),)
        if op is Op.GETGLOBAL:
            return (("global", b),)
        if op is Op.SETGLOBAL:
            return (("reg", a), ("global", b))
        if op is Op.GETTABLE or op is Op.CONCAT:
            return (self._rk(b), self._rk(c))
        if op is Op.SETTABLE:
            return (("reg", a), self._rk(b), self._rk(c))
        if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.IDIV,
                  Op.POW, Op.BAND, Op.BOR, Op.BXOR, Op.SHL, Op.SHR,
                  Op.EQ, Op.LT, Op.LE):
            return (self._rk(b), self._rk(c))
        if op in (Op.UNM, Op.NOT, Op.LEN, Op.BNOT):
            return (("reg", b),)
        if op in (Op.JMPF, Op.JMPT, Op.RETURN):
            return (("reg", a),)
        if op is Op.CALL:
            return tuple(("reg", a + k) for k in range(b + 1))
        if op is Op.FORPREP:
            return (("reg", a), ("reg", a + 1), ("reg", a + 2))
        if op is Op.FORLOOP:
            return (("reg", a), ("reg", a + 1), ("reg", a + 2))
        return ()

    def writes(self, index):
        from repro.engines.lua.opcodes import Op
        instr = self.instrs[index]
        op = Op(instr.op)
        a, _b, _c = instr.args
        if op is Op.SETGLOBAL:
            return (("global", instr.args[1]),)
        if op is Op.SETTABLE:
            return ()  # writes through the table reference, not a slot
        if op is Op.FORPREP:
            # The int path rewrites the index; the coercing slow path
            # rewrites all three control slots.
            return (("reg", a), ("reg", a + 1), ("reg", a + 2))
        if op is Op.FORLOOP:
            return (("reg", a), ("reg", a + 3))
        if op in (Op.JMP, Op.JMPF, Op.JMPT, Op.RETURN, Op.RETURN0):
            return ()
        if self._implemented(op):
            return (("reg", a),)
        return ()


class JsView(BytecodeView):
    """Def/use, successor and stack-effect queries over MiniJS
    stack-VM code."""

    engine = "js"

    def _decode(self, index, word):
        from repro.engines.js.opcodes import decode
        op, imm = decode(word)
        return GuestInstr(index, int(op), op.name, (imm,))

    def successors(self, index):
        from repro.engines.js.opcodes import JsOp
        instr = self.instrs[index]
        op = JsOp(instr.op)
        imm = instr.args[0]
        if op in (JsOp.RETURN, JsOp.RETURN_UNDEF):
            return ()
        if op is JsOp.JUMP:
            return (index + 1 + imm,)
        if op in (JsOp.IFEQ, JsOp.IFNE):
            return (index + 1, index + 1 + imm)
        return (index + 1,)

    def stack_effect(self, index):
        """``(pops, pushes)`` of instruction ``index`` — static for
        every opcode (CALL folds its operand count in)."""
        from repro.engines.js.opcodes import JsOp
        instr = self.instrs[index]
        op = JsOp(instr.op)
        imm = instr.args[0]
        if op in (JsOp.UNDEF, JsOp.NULL, JsOp.PUSHBOOL, JsOp.PUSHK,
                  JsOp.GETLOCAL, JsOp.GETGLOBAL, JsOp.NEWARRAY,
                  JsOp.NEWOBJ):
            return (0, 1)
        if op is JsOp.DUP:
            return (1, 2)
        if op in (JsOp.SETLOCAL, JsOp.SETGLOBAL, JsOp.POP, JsOp.IFEQ,
                  JsOp.IFNE, JsOp.RETURN):
            return (1, 0)
        if op in (JsOp.ADD, JsOp.SUB, JsOp.MUL, JsOp.DIV, JsOp.MOD,
                  JsOp.EQ, JsOp.NE, JsOp.LT, JsOp.LE, JsOp.GT, JsOp.GE,
                  JsOp.GETELEM):
            return (2, 1)
        if op in (JsOp.NEG, JsOp.NOT, JsOp.TYPEOF):
            return (1, 1)
        if op is JsOp.SETELEM:
            return (3, 0)
        if op is JsOp.CALL:
            return (imm + 1, 1)
        return (0, 0)  # JUMP, RETURN_UNDEF

    def reads(self, index):
        from repro.engines.js.opcodes import JsOp
        instr = self.instrs[index]
        op = JsOp(instr.op)
        imm = instr.args[0]
        pops = self.stack_effect(index)[0]
        stack = tuple(("stack", -k) for k in range(pops, 0, -1))
        if op is JsOp.PUSHK:
            return (("const", imm),)
        if op is JsOp.GETLOCAL:
            return (("local", imm),)
        if op is JsOp.GETGLOBAL:
            return (("global", imm),)
        if op is JsOp.SETGLOBAL:
            return stack + (("global", imm),)
        return stack

    def writes(self, index):
        from repro.engines.js.opcodes import JsOp
        instr = self.instrs[index]
        op = JsOp(instr.op)
        imm = instr.args[0]
        pushes = self.stack_effect(index)[1]
        stack = tuple(("stack", -k) for k in range(pushes, 0, -1))
        if op is JsOp.SETLOCAL:
            return (("local", imm),)
        if op is JsOp.SETGLOBAL:
            return (("global", imm),)
        return stack


def view(engine, code):
    """The :class:`BytecodeView` for one function's ``code`` words."""
    if engine == "lua":
        return LuaView(code)
    if engine == "js":
        return JsView(code)
    raise ValueError("unknown engine %r" % (engine,))
