"""Seeded injection schedules: what to flip, where, and when.

A plan is a pure function of its seed — it uses one
:class:`random.Random` stream and never reads the wall clock, the PID
or anything else environmental, so the same seed reproduces the same
campaign bit-for-bit on any machine and any worker count.

Plans are *abstract* until resolved: each scheduled fault carries a
fraction of the run (``frac``) rather than an instruction index, so
one plan can be resolved against the golden instruction counts of
several machine configurations (baseline / chklb / typed) and hit the
same relative point in each — the cross-configuration detection
comparison stays apples-to-apples even though the configs retire
different instruction counts.
"""

import hashlib
import random
from dataclasses import dataclass

#: Injectable structures, in the order a plan cycles through them:
#:
#: * ``reg_value`` — a register's 64-bit value (the only target that
#:   also exists on a baseline core; everything below is state the
#:   Typed Architecture extension adds),
#: * ``reg_tag``   — a register's 8-bit type tag or its F/I bit,
#: * ``trt``       — a Type Rule Table CAM entry (data or key array),
#: * ``mem_tag``   — the in-memory tag plane (tag byte / NaN-box tag),
#: * ``extractor`` — the ``R_offset``/``R_shift``/``R_mask`` registers.
TARGETS = ("reg_value", "reg_tag", "trt", "mem_tag", "extractor")


def _mask_of(bits):
    value = 0
    for bit in bits:
        value |= 1 << bit
    return value


@dataclass(frozen=True)
class FaultSpec:
    """One concrete injection: flip ``bits`` in ``target`` just before
    dynamic instruction ``index`` executes.

    ``bits`` are positions inside the targeted field (register value,
    8-bit tag, TRT byte, tag-plane field, extractor register); ``kind``
    selects the sub-structure where a target has more than one
    (``"tag"``/``"fbit"`` for ``reg_tag``, ``"out"``/``"key"`` for
    ``trt``, the field name for ``extractor``).  Frozen (hashable) so a
    spec can ride inside the hardened executor's task tuples.
    """

    target: str
    index: int
    bits: tuple
    reg: int = 0
    slot: int = 0
    kind: str = ""

    @property
    def mask(self):
        """The XOR mask ``bits`` describes."""
        return _mask_of(self.bits)

    def as_dict(self):
        """JSON-friendly form used in campaign reports."""
        return {"target": self.target, "index": self.index,
                "bits": list(self.bits), "reg": self.reg,
                "slot": self.slot, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload):
        return cls(target=payload["target"], index=payload["index"],
                   bits=tuple(payload["bits"]), reg=payload.get("reg", 0),
                   slot=payload.get("slot", 0),
                   kind=payload.get("kind", ""))


def derive_seed(seed, *parts):
    """A per-cell child seed: deterministic, avalanching, and stable
    across processes (``hash()`` is salted per process; this is not)."""
    text = "%s:%s" % (seed, ":".join(str(part) for part in parts))
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class InjectionPlan:
    """``count`` scheduled faults cycling round-robin over ``targets``.

    The round-robin guarantees every target gets ``count /
    len(targets)`` injections (±1) — a uniform draw over so few samples
    would leave coverage holes.  Bit choices are mostly single-bit
    upsets with a ``multi_bit_rate`` admixture of double-bit flips
    (adjacent-cell upsets), per the usual SEU model.
    """

    def __init__(self, seed, count, targets=TARGETS,
                 multi_bit_rate=0.25):
        self.seed = seed
        self.count = count
        self.targets = tuple(targets)
        rng = random.Random(seed)
        self._scheduled = [self._draw(rng, self.targets[i % len(self.targets)])
                           for i in range(count)]

    @staticmethod
    def _pick_bits(rng, width, multi_bit_rate):
        nbits = 2 if width > 1 and rng.random() < multi_bit_rate else 1
        return tuple(sorted(rng.sample(range(width), nbits)))

    def _draw(self, rng, target):
        """One abstract fault: every field except the final index."""
        frac = rng.random()
        pick = self._pick_bits
        if target == "reg_value":
            return dict(target=target, frac=frac,
                        reg=rng.randrange(1, 32),
                        bits=pick(rng, 64, 0.25), kind="value")
        if target == "reg_tag":
            kind = "fbit" if rng.random() < 0.25 else "tag"
            return dict(target=target, frac=frac,
                        reg=rng.randrange(1, 32),
                        bits=() if kind == "fbit"
                        else pick(rng, 8, 0.25), kind=kind)
        if target == "trt":
            kind = "key" if rng.random() < 0.5 else "out"
            return dict(target=target, frac=frac,
                        slot=rng.randrange(64),
                        bits=pick(rng, 8, 0.25), kind=kind)
        if target == "mem_tag":
            # Bit positions inside the tag-plane field; the injector
            # folds them into the engine's actual tag width/shift.
            return dict(target=target, frac=frac,
                        bits=pick(rng, 8, 0.25), kind="")
        if target == "extractor":
            from repro.sim.tagio import TagCodec
            field, width = TagCodec.FIELDS[
                rng.randrange(len(TagCodec.FIELDS))]
            return dict(target=target, frac=frac,
                        bits=pick(rng, width, 0.25), kind=field)
        raise ValueError("unknown fault target %r" % (target,))

    def resolve(self, length):
        """Bind the plan to a run of ``length`` retired instructions;
        returns concrete :class:`FaultSpec` tuples (one per scheduled
        fault, in schedule order).  Index 0 is skipped — the very first
        instruction has no preceding state worth corrupting differently
        from initial state, and keeping ``index >= 1`` lets tests pin
        "fires before instruction N" exactly.
        """
        span = max(1, length - 1)
        return tuple(
            FaultSpec(target=fault["target"],
                      index=1 + int(fault["frac"] * (span - 1)),
                      bits=tuple(fault["bits"]),
                      reg=fault.get("reg", 0),
                      slot=fault.get("slot", 0),
                      kind=fault.get("kind", ""))
            for fault in self._scheduled)
