"""Deterministic fault injection for the Typed Architecture simulator.

A reliability argument is implicit in the paper: the extension adds
*architectural state* — per-register type tags and F/I bits, the Type
Rule Table CAM, the ``R_offset``/``R_shift``/``R_mask`` extractor
registers, and a tag plane in memory (Sections 3.1-3.3) — and its
checking machinery (TRT lookups, overflow traps, the Checked-Load
comparator) doubles as an error detector: a particle strike that flips
a tag bit is exactly a type mismatch.  This package quantifies that:
it injects single- and multi-bit upsets into each of those structures
at exact, seed-chosen dynamic instruction indices, re-runs the
workload against its golden (fault-free) result, and classifies every
injection as **detected** (a type misprediction, TRT miss, overflow
trap or simulator trap the golden run did not have), **masked**
(bit-identical output), **SDC** (silent data corruption — wrong output,
no trap) or **hang** (tripped the watchdog instruction budget).

* :mod:`plan` — :class:`FaultSpec` / :class:`InjectionPlan`: the
  seeded, wall-clock-free schedule of what to flip and when;
* :mod:`inject` — :class:`FaultSession`: applies a plan to a live CPU
  through :meth:`repro.sim.cpu.Cpu.attach_fault_hook`;
* :mod:`classify` — the four-way outcome taxonomy and watchdog budget;
* :mod:`campaign` — fans hundreds of injections across the hardened
  process pool of :mod:`repro.bench.parallel` and emits the
  deterministic JSON coverage report behind ``repro faults``.

See ``docs/RELIABILITY.md`` for the methodology and headline numbers.
"""

from repro.faults.campaign import load_report, run_campaign, \
    run_injection
from repro.faults.classify import (
    CLASSES,
    DETECTED,
    HANG,
    MASKED,
    SDC,
    classify,
    watchdog_budget,
)
from repro.faults.inject import FaultSession, tag_geometry
from repro.faults.plan import TARGETS, FaultSpec, InjectionPlan

__all__ = [
    "TARGETS",
    "FaultSpec",
    "InjectionPlan",
    "FaultSession",
    "tag_geometry",
    "CLASSES",
    "DETECTED",
    "MASKED",
    "SDC",
    "HANG",
    "classify",
    "watchdog_budget",
    "run_campaign",
    "run_injection",
    "load_report",
]
