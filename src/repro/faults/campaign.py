"""Fault-injection campaigns over the benchmark matrix.

A campaign takes every requested (engine, benchmark, config) cell,
fetches its golden run (served from the disk cache of
:mod:`repro.bench.cache` when available — the golden sweep is the
expensive part and is perfectly reusable), resolves one seeded
:class:`~repro.faults.plan.InjectionPlan` per (engine, benchmark)
against each config's golden instruction count, and fans the
individual injections across the hardened process pool of
:mod:`repro.bench.parallel` — a faulted run that wedges the simulator
is killed by the pool's per-task timeout, retried, and finally
quarantined to serial execution, exactly like a hung benchmark cell.

The report is deterministic by construction: it is assembled in task
order (not completion order), contains no wall-clock timestamps, and
every random choice flows from the campaign seed — the same seed
yields a byte-identical report at ``--jobs 1`` and ``--jobs N``.
"""

from repro.bench import runner
from repro.bench.parallel import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    run_hardened,
)
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import all_configs
from repro.faults.classify import (
    CLASSES,
    DETECTED,
    HANG,
    SDC,
    classify,
    detect_evidence,
    watchdog_budget,
)
from repro.faults.inject import FaultSession, tag_geometry
from repro.faults.plan import TARGETS, InjectionPlan, derive_seed
from repro.schema import require, stamp

#: Injections per (engine, benchmark, config) cell — 8 per target with
#: the default five targets; the CLI's ``--count`` overrides it.
DEFAULT_COUNT = 40

_PREPARE = None


def _prepare_fn(engine):
    global _PREPARE
    if _PREPARE is None:
        from repro.engines.js import vm as js_vm
        from repro.engines.lua import vm as lua_vm
        _PREPARE = {"lua": (lua_vm.prepare, "lua_source"),
                    "js": (js_vm.prepare, "js_source")}
    return _PREPARE[engine]


def run_injection(task):
    """Worker body: one faulted run, classified against its golden.

    ``task`` is a flat, hashable, picklable tuple —
    ``(engine, benchmark, config, scale, spec, golden_output,
    golden_instret, golden_detect)`` — so it can ride through the
    hardened executor's retry accounting unchanged.  The golden
    numbers travel *in* the task on purpose: workers never touch the
    result caches.
    """
    (engine, benchmark, config, scale, spec,
     golden_output, golden_instret, golden_detect) = task
    from repro.bench.workloads import workload
    from repro.uarch.pipeline import Machine

    prepare, source_attr = _prepare_fn(engine)
    source = getattr(workload(benchmark), source_attr)(scale)
    cpu, runtime, _program = prepare(source, config)
    session = FaultSession(cpu, [spec],
                           geometry=tag_geometry(engine)).attach()
    machine = Machine(cpu)
    budget = watchdog_budget(golden_instret)
    error = None
    try:
        machine.run(max_instructions=budget)
    except Exception as err:  # noqa: BLE001 — any abnormal halt is data
        error = err
    output = "".join(runtime.output)
    detect = (cpu.trt.misses, cpu.overflow_traps, cpu.chk_misses)
    outcome = classify(error, output, golden_output, detect,
                       golden_detect)
    return {
        "spec": spec.as_dict(),
        "class": outcome,
        "error": type(error).__name__ if error is not None else None,
        "applied": session.applied,
        "absorbed": session.absorbed,
        "instret": cpu.instret,
        "detect": list(detect),
    }


def _empty_tally():
    return {name: 0 for name in CLASSES}


def run_campaign(seed=0, count=DEFAULT_COUNT, engines=("lua", "js"),
                 benchmarks=BENCHMARK_ORDER, configs=None,
                 scales=None, targets=TARGETS, max_workers=None,
                 timeout=DEFAULT_TIMEOUT, retries=DEFAULT_RETRIES,
                 backoff=DEFAULT_BACKOFF, telemetry=None,
                 progress=None):
    """Run ``count`` injections per cell; returns the report dict.

    ``progress(done, total, result)`` fires per completed injection in
    completion order; ``telemetry`` (a :class:`repro.telemetry.Telemetry`
    bus) receives one ``fault``-category event per injection.  The
    report itself is independent of both and of ``max_workers``.
    """
    configs = all_configs() if configs is None else configs
    cells = []
    for engine in engines:
        for benchmark in benchmarks:
            scale = runner.resolve_scale(benchmark,
                                         (scales or {}).get(benchmark))
            for config in configs:
                cells.append((engine, benchmark, config, scale))

    # Golden runs first (cache-served when warm); one plan per
    # (engine, benchmark) so all configs face the same fault sequence.
    plans = {}
    tasks = []
    golden_meta = {}
    for engine, benchmark, config, scale in cells:
        record = runner.run_benchmark(engine, benchmark, config,
                                      scale=scale)
        golden_instret = record.counters.core_instructions
        golden_detect = detect_evidence(record.counters)
        golden_meta[(engine, benchmark, config)] = {
            "scale": scale, "golden_instret": golden_instret,
            "golden_detect": list(golden_detect)}
        plan_key = (engine, benchmark)
        if plan_key not in plans:
            plans[plan_key] = InjectionPlan(
                derive_seed(seed, engine, benchmark), count,
                targets=targets)
        for spec in plans[plan_key].resolve(golden_instret):
            tasks.append((engine, benchmark, config, scale, spec,
                          record.output, golden_instret, golden_detect))

    total = len(tasks)
    state = {"done": 0}

    def on_result(task, result):
        state["done"] += 1
        if telemetry is not None:
            telemetry.emit({"cat": "fault", "name": "injection",
                            "engine": task[0], "benchmark": task[1],
                            "config": task[2],
                            "target": result["spec"]["target"],
                            "index": result["spec"]["index"],
                            "class": result["class"]})
        if progress is not None:
            progress(state["done"], total, result)

    workers = max_workers or 1
    if workers > 1 and total > 1:
        results = run_hardened(run_injection, tasks,
                               max_workers=workers, timeout=timeout,
                               retries=retries, backoff=backoff,
                               on_result=on_result)
    else:
        results = {}
        for task in tasks:
            result = run_injection(task)
            results[task] = result
            on_result(task, result)

    return _build_report(seed, count, targets, cells, tasks, results,
                         golden_meta)


def _build_report(seed, count, targets, cells, tasks, results,
                  golden_meta):
    """Assemble the deterministic JSON-ready report, in task order."""
    report_cells = {}
    coverage = {}
    totals = _empty_tally()
    for task in tasks:
        engine, benchmark, config = task[0], task[1], task[2]
        result = results[task]
        key = (engine, benchmark, config)
        cell = report_cells.get(key)
        if cell is None:
            meta = golden_meta[key]
            cell = report_cells[key] = {
                "engine": engine, "benchmark": benchmark,
                "config": config, "scale": meta["scale"],
                "golden_instret": meta["golden_instret"],
                "golden_detect": meta["golden_detect"],
                "outcomes": _empty_tally(),
                "sdc_detail": {"silent": 0, "abort": 0},
                "by_target": {},
                "injections": [],
            }
        outcome = result["class"]
        target = result["spec"]["target"]
        cell["outcomes"][outcome] += 1
        if outcome == SDC:
            # Silent wrong output vs a guest-level (software guard)
            # abort: both are SDC in the four-way taxonomy, but guard
            # elision moves mass between them, so campaigns report the
            # split (see docs/ANALYSIS.md).
            kind = "silent" if result["error"] is None else "abort"
            cell["sdc_detail"][kind] += 1
        cell["by_target"].setdefault(target, _empty_tally())
        cell["by_target"][target][outcome] += 1
        cell["injections"].append(result)
        totals[outcome] += 1
        config_cov = coverage.setdefault(config, {})
        target_cov = config_cov.setdefault(
            target, {"detected": 0, "hang": 0, "total": 0})
        target_cov["total"] += 1
        if outcome == DETECTED:
            target_cov["detected"] += 1
        elif outcome == HANG:
            target_cov["hang"] += 1

    for config_cov in coverage.values():
        for target_cov in config_cov.values():
            target_cov["rate"] = round(
                target_cov["detected"] / target_cov["total"], 4) \
                if target_cov["total"] else 0.0

    return stamp({
        "seed": seed,
        "count_per_cell": count,
        "targets": list(targets),
        "classes": totals,
        "coverage": coverage,
        "cells": [report_cells[cell[:3]] for cell in cells
                  if cell[:3] in report_cells],
    })


def load_report(source):
    """Load and validate a campaign report (a path, a JSON string or
    an already-parsed dict); raises :class:`repro.schema.SchemaError`
    when the payload is from another schema version."""
    import json
    import os
    payload = source
    if isinstance(source, (str, bytes, os.PathLike)):
        if isinstance(source, str) and source.lstrip().startswith("{"):
            payload = json.loads(source)
        else:
            with open(source) as handle:
                payload = json.load(handle)
    return require(payload, "fault-campaign report")
