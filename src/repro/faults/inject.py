"""Apply an injection plan to a live CPU.

A :class:`FaultSession` attaches through
:meth:`repro.sim.cpu.Cpu.attach_fault_hook`, which rebinds ``step`` on
the instance — the same idiom the telemetry tracer uses.  The rebind
has a deliberate side effect: :meth:`repro.uarch.pipeline.Machine.run`
notices the shadowed ``step`` and deopts from the basic-block
superinstruction engine to the per-instruction reference loop, so the
watchdog budget trips at the exact instruction and timing counters
stay honest under injection.

The hook fires *before* each instruction with the side-channel fields
(``mem_addr``/``mem_addr2``) still describing the *previous* one,
which is exactly what the memory-tag target needs: a tag-plane upset
is aimed at the most recently touched value, where it has a chance to
be consumed before being overwritten.
"""

from dataclasses import dataclass

from repro.isa.extension import TAG_DWORD_DISPLACEMENT
from repro.sim.cpu import MASK64


@dataclass(frozen=True)
class TagGeometry:
    """Where an engine keeps tag bits in memory.

    ``displacement`` is the tag double-word's byte offset from the
    value double-word; ``shift``/``width`` locate the tag field inside
    it.  ``slot_base``/``slot_size`` describe the engine's value-slot
    region (Lua's 16-byte TValue register frames, the JS engine's
    8-byte NaN-boxed stack slots): tag-plane faults are aimed at slots
    in that region, where tag bits actually live.
    """

    displacement: int
    shift: int
    width: int
    slot_base: int
    slot_size: int

    def tag_addr_for(self, addr):
        """The tag double-word of the value slot containing ``addr``
        (which may itself be the slot's tag word), or ``None`` when
        ``addr`` lies outside the value-slot region."""
        if addr < self.slot_base:
            return None
        slot = addr - ((addr - self.slot_base) % self.slot_size)
        return (slot + self.displacement) & MASK64


def tag_geometry(engine):
    """The :class:`TagGeometry` of one engine's in-memory tag plane.

    Derived from the engine *layout* (the ``SPR_SETTINGS`` its typed
    interpreter programs into the extractor registers), not from the
    live codec: the baseline interpreter never executes
    ``setoffset``/``setshift``/``setmask``, yet its stack and heap
    carry the same physical tag bits — using the layout keeps the
    injected bit positions identical across configs, which is what
    makes the typed-vs-baseline detection comparison fair.
    """
    if engine == "lua":
        from repro.engines.lua import layout
        slot_base, slot_size = layout.REG_STACK_BASE, layout.TVALUE_SIZE
    elif engine == "js":
        from repro.engines.js import layout
        slot_base, slot_size = layout.STACK_BASE, layout.VALUE_SIZE
    else:
        raise ValueError("unknown engine %r" % (engine,))
    spr = layout.SPR_SETTINGS
    return TagGeometry(
        displacement=TAG_DWORD_DISPLACEMENT[spr.offset & 0b11],
        shift=spr.shift & 0x3F,
        width=max(1, bin(spr.mask & 0xFF).count("1")),
        slot_base=slot_base, slot_size=slot_size)


class FaultSession:
    """Inject the given :class:`FaultSpec`\\ s into ``cpu`` as it runs.

    ``geometry`` is :func:`tag_geometry` for the engine under test
    (required only when the plan contains ``mem_tag`` faults).  The
    session keeps an ``applied`` log — one dict per fault that actually
    landed — and an ``absorbed`` count for faults with nothing to upset
    (an empty TRT slot, ``x0``, an out-of-range tag address): absorbed
    faults are architecturally masked by definition.
    """

    def __init__(self, cpu, faults, geometry=None):
        self.cpu = cpu
        self.queue = sorted(faults, key=lambda spec: spec.index)
        self.geometry = geometry
        self.applied = []
        self.absorbed = 0
        self._last_value_addr = None
        self._last_tag_addr = None

    # -- lifecycle ---------------------------------------------------------
    def attach(self):
        self.cpu.attach_fault_hook(self._hook)
        return self

    def detach(self):
        self.cpu.detach_fault_hook()

    # -- injection ---------------------------------------------------------
    def _hook(self, cpu):
        # Remember where the previous instruction touched memory: the
        # freshest possible tag-plane site.  Only accesses inside the
        # engine's value-slot region count — bytecode fetches and jump
        # tables have no tag plane to upset.
        if cpu.mem_addr is not None and self.geometry is not None \
                and cpu.mem_addr >= self.geometry.slot_base:
            self._last_value_addr = cpu.mem_addr
        if cpu.mem_addr2 is not None:
            self._last_tag_addr = cpu.mem_addr2
        queue = self.queue
        while queue and queue[0].index <= cpu.instret:
            spec = queue[0]
            if spec.target == "mem_tag" and self._tag_site() is None:
                # No memory touched yet: hold the fault (and everything
                # scheduled after it) until a site exists.
                return
            del queue[0]
            landed = self._apply(cpu, spec)
            if landed:
                self.applied.append({
                    "target": spec.target, "kind": spec.kind,
                    "index": cpu.instret, "bits": list(spec.bits),
                    "reg": spec.reg, "slot": spec.slot})
            else:
                self.absorbed += 1

    def _tag_site(self):
        """The tag double-word address to upset, or ``None``."""
        if self._last_tag_addr is not None:
            return self._last_tag_addr
        if self._last_value_addr is None or self.geometry is None:
            return None
        return self.geometry.tag_addr_for(self._last_value_addr)

    def _apply(self, cpu, spec):
        """Land one fault; returns ``False`` when it was absorbed."""
        if spec.target == "reg_value":
            if spec.reg == 0:
                return False
            cpu.regs.corrupt_value(spec.reg, spec.mask)
            return True
        if spec.target == "reg_tag":
            if spec.reg == 0:
                return False
            cpu.regs.corrupt_tag(spec.reg, spec.mask,
                                 flip_fbit=spec.kind == "fbit")
            return True
        if spec.target == "trt":
            if spec.kind == "key":
                return cpu.trt.corrupt_entry(spec.slot,
                                             key_mask=spec.mask or 1)
            return cpu.trt.corrupt_entry(spec.slot,
                                         out_mask=spec.mask or 1)
        if spec.target == "extractor":
            cpu.codec.corrupt(spec.kind, spec.mask or 1)
            return True
        if spec.target == "mem_tag":
            return self._apply_mem_tag(cpu, spec)
        raise ValueError("unknown fault target %r" % (spec.target,))

    def _apply_mem_tag(self, cpu, spec):
        """Flip tag-field bits of the freshest tag double-word.

        ``spec.bits`` index into the engine's tag field (folded modulo
        its width), so the same abstract fault lands on the tag byte of
        Lua's struct layout and inside the 4-bit NaN-box tag of the JS
        layout alike.
        """
        base = self._tag_site()
        if base is None:
            return False
        geometry = self.geometry
        shift = geometry.shift if geometry else 0
        width = geometry.width if geometry else 8
        per_byte = {}
        for bit in spec.bits:
            absolute = shift + (bit % width)
            per_byte.setdefault(absolute >> 3, 0)
            per_byte[absolute >> 3] |= 1 << (absolute & 7)
        landed = False
        for byte_index, byte_mask in sorted(per_byte.items()):
            if cpu.mem.corrupt((base + byte_index) & MASK64, byte_mask):
                landed = True
        return landed
