"""The four-way outcome taxonomy of a fault-injection run.

Every injection is classified against the *golden* (fault-free) run of
the same cell, in strict priority order:

1. **hang** — the watchdog instruction budget tripped
   (:class:`~repro.sim.errors.ExecutionLimitExceeded`); the fault sent
   execution into a loop the golden run did not have.
2. **detected** — the *machine* noticed: a hardware trap the golden
   run did not raise (:class:`IllegalInstruction`, a memory fault —
   any :class:`SimulationError`), or the checking machinery fired more
   often than in the golden run — extra TRT misses (type
   mispredictions), extra overflow traps, or extra Checked-Load
   comparator misses.  Detection beats masking on purpose: a fault the
   checkers caught *and* the slow path repaired is a detection
   success, not luck.
3. **masked** — program output is bit-identical to golden; the flipped
   bit was dead, overwritten, or logically irrelevant.
4. **SDC** — silent data corruption: the hardware stayed silent and
   the program misbehaved.  Wrong output is the obvious case, but a
   *guest-level* error (the interpreted script aborting with
   ``LuaError``/``JsError`` from a software guard) counts as SDC too:
   those guards live above the architecture, and crediting them would
   let the baseline claim the typed hardware's detection story.
"""

from repro.sim.errors import ExecutionLimitExceeded, SimulationError

DETECTED = "detected"
MASKED = "masked"
SDC = "sdc"
HANG = "hang"

#: All outcome classes, in report order.
CLASSES = (DETECTED, MASKED, SDC, HANG)

#: Counters that constitute hardware detection evidence, in the order
#: they appear in a ``detect`` tuple: TRT misses (type mispredictions),
#: integer overflow traps, Checked-Load comparator misses.
DETECT_COUNTERS = ("type_misses", "overflow_traps", "chk_misses")


def detect_evidence(counters):
    """The detection-evidence tuple of a golden run's counters."""
    return tuple(getattr(counters, name, 0) or 0
                 for name in DETECT_COUNTERS)


def watchdog_budget(golden_instret, factor=2, floor=10_000):
    """Instruction budget for a faulted run: generous enough that a
    legitimate extra slow-path excursion finishes, tight enough that a
    campaign of hundreds of injections stays cheap."""
    return max(floor, int(golden_instret) * factor)


def classify(error, output, golden_output, detect, golden_detect):
    """Classify one faulted run (see the module docstring for the
    priority order).  ``detect``/``golden_detect`` are
    :data:`DETECT_COUNTERS`-ordered tuples."""
    if isinstance(error, ExecutionLimitExceeded):
        return HANG
    if isinstance(error, SimulationError):
        return DETECTED
    if any(faulty > golden
           for faulty, golden in zip(detect, golden_detect)):
        return DETECTED
    if error is not None:  # guest-level (software) abort: no trap fired
        return SDC
    if output == golden_output:
        return MASKED
    return SDC
