"""Typed Architectures (ASPLOS 2017) reproduction.

A pure-Python reproduction of *Typed Architectures: Architectural Support
for Lightweight Scripting* (Kim et al., ASPLOS 2017): an RV64 functional +
timing-approximate simulator with the paper's ISA extension (tagged
register file, Type Rule Table, polymorphic ALU ops, reconfigurable tag
extract/insert), two scripting-engine substrates whose interpreters run
*on* the simulator (MiniLua, a Lua-5.3-style register VM; MiniJS, a
SpiderMonkey-17-style NaN-boxing stack VM), the Checked Load comparator,
a 40nm area/power model, and a harness regenerating every table and
figure of the paper's evaluation.

Quickstart — :func:`repro.api.run` is the single documented entry
point (see docs/API.md)::

    from repro.api import run

    result = run("lua", "print(1 + 2)", config="typed")
    print(result.output, result.counters.cycles)

    result = run("js", "fibo", scale=10, config="typed")  # benchmark

For a long-lived execution daemon (warm workers, request coalescing,
deadlines), see :mod:`repro.serve` and the ``repro serve`` /
``repro submit`` CLI verbs.
"""

__version__ = "1.1.0"

#: Public surface re-exported lazily (PEP 562) so that ``import repro``
#: stays free of engine/bench imports until a name is actually used.
_EXPORTS = {
    "run": ("repro.api", "run"),
    "execute": ("repro.api", "execute"),
    "ExecutionRequest": ("repro.api", "ExecutionRequest"),
    "ExecutionResult": ("repro.api", "ExecutionResult"),
    "SCHEMA_VERSION": ("repro.schema", "SCHEMA_VERSION"),
    "Counters": ("repro.uarch.counters", "Counters"),
    "MachineConfig": ("repro.uarch.config", "MachineConfig"),
    "RunRecord": ("repro.bench.runner", "RunRecord"),
}

__all__ = ["run", "execute", "ExecutionRequest", "ExecutionResult",
           "SCHEMA_VERSION", "Counters", "MachineConfig", "RunRecord",
           "__version__"]


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name))
    import importlib
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
