"""Typed Architectures (ASPLOS 2017) reproduction.

A pure-Python reproduction of *Typed Architectures: Architectural Support
for Lightweight Scripting* (Kim et al., ASPLOS 2017): an RV64 functional +
timing-approximate simulator with the paper's ISA extension (tagged
register file, Type Rule Table, polymorphic ALU ops, reconfigurable tag
extract/insert), two scripting-engine substrates whose interpreters run
*on* the simulator (MiniLua, a Lua-5.3-style register VM; MiniJS, a
SpiderMonkey-17-style NaN-boxing stack VM), the Checked Load comparator,
a 40nm area/power model, and a harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro.engines.lua import run_lua
    result = run_lua("print(1 + 2)", config="typed")
    print(result.output, result.counters.cycles)
"""

__version__ = "1.0.0"
