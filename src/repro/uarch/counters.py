"""Performance counters collected by a timed run.

The Rocket prototype in the paper integrates custom performance counters
(Section 6); this class is their software analogue.  All MPKI figures use
total dynamic instructions (core plus charged native-library instructions)
as the denominator, matching how the paper reports per-benchmark rates.
"""

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Everything the evaluation figures need from one run."""

    core_instructions: int = 0
    host_instructions: int = 0
    cycles: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    load_use_stalls: int = 0
    type_hits: int = 0
    type_misses: int = 0
    overflow_traps: int = 0
    chk_hits: int = 0
    chk_misses: int = 0
    host_calls: int = 0
    bytecode_counts: dict = field(default_factory=dict)
    bucket_instructions: dict = field(default_factory=dict)
    bytecode_type_hits: dict = field(default_factory=dict)
    bytecode_type_misses: dict = field(default_factory=dict)
    #: Flat attribution computed at handler-entry boundaries: every
    #: retired instruction/cycle lands in exactly one bytecode's span
    #: (``"(startup)"`` before the first entry), so the values sum to
    #: ``core_instructions``/``cycles`` *exactly* — the reconciliation
    #: contract ``repro profile`` is built on.
    bytecode_flat_instructions: dict = field(default_factory=dict)
    bytecode_flat_cycles: dict = field(default_factory=dict)
    #: TRT miss attribution keyed ``"opcode/t1/t2"`` (Section 6's
    #: per-site type-check accounting).
    trt_miss_keys: dict = field(default_factory=dict)

    @property
    def instructions(self):
        """Total dynamic instructions, core plus native-library charge."""
        return self.core_instructions + self.host_instructions

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0

    def _mpki(self, events):
        if not self.instructions:
            return 0.0
        return 1000.0 * events / self.instructions

    @property
    def branch_mpki(self):
        return self._mpki(self.branch_mispredicts)

    @property
    def icache_mpki(self):
        return self._mpki(self.icache_misses)

    @property
    def dcache_mpki(self):
        return self._mpki(self.dcache_misses)

    @property
    def type_hit_rate(self):
        checks = self.type_hits + self.type_misses
        return self.type_hits / checks if checks else 0.0

    #: Derived metrics included in :meth:`as_dict` for reporting but
    #: ignored by :meth:`from_dict` (they are recomputed on demand).
    DERIVED = ("instructions", "ipc", "cpi", "branch_mpki", "icache_mpki",
               "dcache_mpki", "type_hit_rate")

    def as_dict(self):
        """Complete flat view: every raw counter (including the
        per-bytecode breakdown dicts) plus the derived metrics.

        ``Counters.from_dict(c.as_dict())`` round-trips exactly, which
        is what makes :class:`repro.bench.runner.RunRecord` JSON
        serialisable for the on-disk result cache.
        """
        view = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            view[spec.name] = dict(value) if isinstance(value, dict) \
                else value
        for name in self.DERIVED:
            view[name] = getattr(self, name)
        return view

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`as_dict`; derived/unknown keys are ignored."""
        kwargs = {}
        for spec in fields(cls):
            if spec.name not in data:
                continue
            value = data[spec.name]
            kwargs[spec.name] = dict(value) if isinstance(value, dict) \
                else value
        return cls(**kwargs)
