"""Machine configuration: the paper's Table 6 evaluation parameters.

The defaults mirror the synthesized Rocket core the paper measures on
FPGA: single-issue in-order 5-stage pipeline at 50MHz, a 128-entry gshare
predictor (32B of 2-bit counters), a 62-entry fully-associative BTB, a
2-entry return-address stack with a 2-cycle branch-miss penalty, and
16KB 4-way 1-cycle L1 caches with 64B lines and LRU replacement over
DDR3-1066 main memory.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """One L1 cache."""

    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = 64

    @property
    def sets(self):
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class BranchConfig:
    """Front-end predictors."""

    gshare_entries: int = 128   # 32B of 2-bit counters
    btb_entries: int = 62
    ras_entries: int = 2
    miss_penalty: int = 2       # cycles


@dataclass(frozen=True)
class DramConfig:
    """DDR3-1066 single-rank timing, folded to 50MHz core cycles."""

    banks: int = 8
    row_bits: int = 13          # row id = addr >> row_bits
    open_row_latency: int = 12  # core cycles for a row-buffer hit
    closed_row_latency: int = 25  # tRP+tRCD+tCL at 7/7/7, bus + core ratio


@dataclass(frozen=True)
class LatencyConfig:
    """Execution-unit latencies charged by the timing model (core cycles
    beyond the single-issue baseline of one cycle per instruction)."""

    mul: int = 4
    div: int = 30
    fp_alu: int = 2
    fp_div: int = 25
    fp_sqrt: int = 30
    load_use_stall: int = 1
    type_miss_penalty: int = 2  # pipeline redirect, same as a branch miss
    host_cpi: float = 1.2       # average CPI charged to native library code


@dataclass(frozen=True)
class MachineConfig:
    """Complete Table 6 parameter set."""

    clock_mhz: int = 50
    pipeline_stages: int = 5
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    branch: BranchConfig = field(default_factory=BranchConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)


DEFAULT_CONFIG = MachineConfig()


def table6_rows():
    """The evaluation-parameter rows of Table 6, for the report printer."""
    cfg = DEFAULT_CONFIG
    return [
        ("ISA", "64-bit RISC-V v2 (simulated) + Typed Architecture ext."),
        ("Architecture", "Single-Issue In-Order, %dMHz" % cfg.clock_mhz),
        ("Pipeline", "Fetch/Decode/Execute/Memory/Writeback (%d stages)"
         % cfg.pipeline_stages),
        ("Branch Predictor",
         "32B predictor (%d-entry gshare), %d-entry fully-associative BTB, "
         "%d-entry RAS, %d-cycle branch miss penalty"
         % (cfg.branch.gshare_entries, cfg.branch.btb_entries,
            cfg.branch.ras_entries, cfg.branch.miss_penalty)),
        ("Caches",
         "16KB, 4-way, 1-cycle L1 I-cache; 16KB, 4-way, 1-cycle L1 D-cache; "
         "64B block size with LRU replacement policy"),
        ("Memory", "DDR3-1066, 1 rank, tCL/tRCD/tRP = 7/7/7"),
        ("Workloads", "MiniLua (Lua-5.3-style VM), MiniJS "
         "(SpiderMonkey-17-style VM)"),
    ]
