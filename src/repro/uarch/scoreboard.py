"""Scoreboard (stage-timestamped) pipeline model.

A second, more detailed timing opinion used to cross-validate the fast
per-instruction model in :mod:`repro.uarch.pipeline`.  Instead of
charging a single cycle plus penalties, every retired instruction gets
explicit per-stage timestamps through the classic five stages
(IF/ID/EX/MEM/WB) with:

* one instruction fetched per cycle (single issue, in-order),
* full bypassing: ALU results forward from EX, load results from MEM
  (hence the one-cycle load-use interlock emerges naturally),
* multi-cycle execution units occupying EX,
* front-end redirects (branch mispredictions and type mispredictions)
  restarting fetch after the resolving EX stage,
* the same I/D cache, DRAM and predictor models as the fast machine.

Because the core is in-order and single-issue, iterating instructions in
retirement order with ready-time bookkeeping is exact with respect to
this stage model — no cycle-by-cycle event loop is needed.
"""

from repro.isa.instructions import INSTRUCTION_SPECS
from repro.sim.errors import ExecutionLimitExceeded
from repro.uarch.branch import FrontEnd
from repro.uarch.cache import Cache
from repro.uarch.config import DEFAULT_CONFIG
from repro.uarch.counters import Counters
from repro.uarch.dram import Dram
from repro.uarch.pipeline import (
    K_BRANCH,
    K_CHECK,
    K_DIV,
    K_ECALL,
    K_FP_ALU,
    K_FP_DIV,
    K_FP_SQRT,
    K_JAL,
    K_JALR,
    K_LOAD,
    K_MUL,
    K_STORE,
    K_TAGGED_ALU,
    _kind_of,
)

_READS_RS2_FMTS = frozenset(["R", "S", "B"])


class ScoreboardMachine:
    """Stage-timestamped run of a functional CPU."""

    def __init__(self, cpu, config=None):
        self.cpu = cpu
        self.config = config or DEFAULT_CONFIG
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.dram = Dram(self.config.dram)
        self.frontend = FrontEnd(self.config.branch)
        self.counters = Counters()
        self._kinds = [_kind_of(i.mnemonic)
                       for i in cpu.program.instructions]
        self._reads_rs2 = [
            INSTRUCTION_SPECS[i.mnemonic].fmt in _READS_RS2_FMTS
            for i in cpu.program.instructions]

    def run(self, max_instructions=200_000_000):
        cpu = self.cpu
        latency = self.config.latency
        kinds = self._kinds
        reads_rs2 = self._reads_rs2
        base = cpu.program.base
        icache, dcache, dram = self.icache, self.dcache, self.dram
        frontend = self.frontend
        counters = self.counters

        reg_ready = [0] * 32   # cycle each x-register's value bypasses
        freg_ready = [0] * 32
        fetch_ready = 0        # earliest cycle the next fetch can start
        last_retire = 0

        while not cpu.halted:
            pc = cpu.pc
            index = (pc - base) >> 2
            instr = cpu.step()
            kind = kinds[index]

            # -- IF ------------------------------------------------------
            fetch = fetch_ready
            if not icache.access(pc):
                fetch += dram.access(pc)
            fetch_ready = fetch + 1  # next sequential fetch
            decode = fetch + 1

            # -- ID/issue: wait for source operands (full bypassing) ------
            issue = decode
            spec = instr.spec
            fp_sources = spec.regclass("rs1") == "f"
            if fp_sources:
                if freg_ready[instr.rs1] > issue:
                    issue = freg_ready[instr.rs1]
            elif reg_ready[instr.rs1] > issue:
                issue = reg_ready[instr.rs1]
            if reads_rs2[index]:
                if spec.regclass("rs2") == "f":
                    if freg_ready[instr.rs2] > issue:
                        issue = freg_ready[instr.rs2]
                elif reg_ready[instr.rs2] > issue:
                    issue = reg_ready[instr.rs2]

            # -- EX -------------------------------------------------------
            extra = 0
            if kind == K_MUL:
                extra = latency.mul
            elif kind == K_DIV:
                extra = latency.div
            elif kind == K_FP_ALU:
                extra = latency.fp_alu
            elif kind == K_FP_DIV:
                extra = latency.fp_div
            elif kind == K_FP_SQRT:
                extra = latency.fp_sqrt
            elif kind == K_TAGGED_ALU and not cpu.redirect:
                if cpu.regs.fbit[instr.rd] or instr.mnemonic == "xmul":
                    extra = latency.fp_alu if instr.mnemonic != "xmul" \
                        else latency.mul
            execute = issue + 1 + extra

            # -- MEM ------------------------------------------------------
            mem_done = execute
            is_load = kind == K_LOAD or \
                (kind == K_CHECK and instr.mnemonic != "tchk")
            if is_load or kind == K_STORE:
                mem_done = execute + 1
                if not dcache.access(cpu.mem_addr):
                    mem_done += dram.access(cpu.mem_addr)
                if cpu.mem_addr2 is not None and \
                        not dcache.access(cpu.mem_addr2):
                    mem_done += dram.access(cpu.mem_addr2)
            elif kind == K_ECALL:
                cost = cpu.pending_host_cost
                cpu.pending_host_cost = 0
                counters.host_instructions += cost
                counters.host_calls += 1
                mem_done = execute + int(cost * latency.host_cpi)

            # -- destination availability (bypass network) -----------------
            if instr.rd:
                ready = mem_done if is_load or kind == K_ECALL else execute
                if spec.regclass("rd") == "f":
                    freg_ready[instr.rd] = ready
                else:
                    reg_ready[instr.rd] = ready
            retire = mem_done + 1  # WB
            if retire > last_retire:
                last_retire = retire

            # -- control flow: redirects restart fetch after EX ------------
            penalty = 0
            if kind == K_BRANCH:
                penalty = frontend.conditional_branch(pc, cpu.branch_taken,
                                                      cpu.pc)
            elif kind == K_JAL:
                penalty = frontend.direct_jump(pc, cpu.pc, instr.rd == 1,
                                               pc + 4)
            elif kind == K_JALR:
                penalty = frontend.indirect_jump(
                    pc, cpu.pc, instr.rd == 0 and instr.rs1 == 1,
                    instr.rd == 1, pc + 4)
            elif kind in (K_TAGGED_ALU, K_CHECK) and cpu.redirect:
                penalty = frontend.pipeline_redirect()
            if penalty:
                # The correct-path fetch restarts once the branch resolves.
                restart = execute + penalty - 1
                if restart > fetch_ready:
                    fetch_ready = restart

            if cpu.instret >= max_instructions:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions" % max_instructions)

        counters.cycles = last_retire
        counters.core_instructions = cpu.instret
        counters.branches = frontend.branches
        counters.branch_mispredicts = frontend.mispredicts
        counters.btb_misses = frontend.btb_misses
        counters.icache_accesses = icache.accesses
        counters.icache_misses = icache.misses
        counters.dcache_accesses = dcache.accesses
        counters.dcache_misses = dcache.misses
        counters.type_hits = cpu.trt.hits
        counters.type_misses = cpu.trt.misses
        counters.overflow_traps = cpu.overflow_traps
        counters.chk_hits = cpu.chk_hits
        counters.chk_misses = cpu.chk_misses
        return counters
