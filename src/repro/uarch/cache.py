"""Set-associative cache model with true-LRU replacement.

Only hit/miss behaviour is modelled (the data lives in the functional
memory); the timing layer charges the DRAM latency on a miss.
"""


class Cache:
    """A ``sets`` x ``ways`` tag store with per-set LRU ordering."""

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        if config.line_bytes <= 0 or \
                config.line_bytes & (config.line_bytes - 1):
            raise ValueError("cache line size must be a power of two")
        self.line_shift = config.line_bytes.bit_length() - 1
        self.set_mask = config.sets - 1
        if config.sets & self.set_mask:
            raise ValueError("cache set count must be a power of two")
        self.ways = config.ways
        # Each set is a list of tags ordered LRU -> MRU.
        self._sets = [[] for _ in range(config.sets)]
        self.accesses = 0
        self.misses = 0
        # Optional miss hook ``on_miss(addr)`` — the telemetry layer's
        # tap.  Checked only on the (rare) miss path, so the hit path
        # pays nothing for the instrumentation point.
        self.on_miss = None

    def access(self, addr):
        """Access the line containing ``addr``; returns True on a hit."""
        self.accesses += 1
        line = addr >> self.line_shift
        entry = self._sets[line & self.set_mask]
        # MRU fast path: re-touching the most recent line leaves the LRU
        # order unchanged, so skip the remove/append churn.
        if entry and entry[-1] == line:
            return True
        tag = line >> 0  # full line id doubles as the tag
        try:
            entry.remove(tag)
        except ValueError:
            self.misses += 1
            if len(entry) >= self.ways:
                entry.pop(0)
            entry.append(tag)
            if self.on_miss is not None:
                self.on_miss(addr)
            return False
        entry.append(tag)
        return True

    def contains(self, addr):
        """Non-intrusive lookup (no statistics, no LRU update)."""
        line = addr >> self.line_shift
        return line in self._sets[line & self.set_mask]

    def flush(self):
        """Invalidate every line (statistics are preserved)."""
        for entry in self._sets:
            entry.clear()

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0
