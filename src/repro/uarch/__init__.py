"""Timing-approximate microarchitecture model (Table 6 machine)."""

from repro.uarch.branch import Btb, FrontEnd, Gshare, ReturnAddressStack
from repro.uarch.cache import Cache
from repro.uarch.config import DEFAULT_CONFIG, MachineConfig
from repro.uarch.counters import Counters
from repro.uarch.dram import Dram
from repro.uarch.pipeline import Attribution, Machine
from repro.uarch.scoreboard import ScoreboardMachine

__all__ = [
    "Attribution",
    "Btb",
    "Cache",
    "Counters",
    "DEFAULT_CONFIG",
    "Dram",
    "FrontEnd",
    "Gshare",
    "Machine",
    "MachineConfig",
    "ReturnAddressStack",
    "ScoreboardMachine",
]
