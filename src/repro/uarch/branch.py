"""Front-end predictors: gshare, a fully-associative BTB, and a small RAS.

These mirror the Rocket front end of Table 6: a 32-byte gshare predictor
(128 two-bit counters indexed by PC xor global history), a 62-entry
fully-associative branch target buffer with LRU replacement, and a
two-entry return-address stack.  A wrong direction or wrong target costs
the configured redirect penalty.
"""


class Gshare:
    """128-entry table of 2-bit saturating counters with global history."""

    def __init__(self, entries=128):
        self.entries = entries
        self.mask = entries - 1
        if entries & self.mask:
            raise ValueError("gshare entries must be a power of two")
        self.history_bits = entries.bit_length() - 1
        self.history_mask = (1 << self.history_bits) - 1
        self.counters = [1] * entries  # weakly not-taken
        self.history = 0

    def _index(self, pc):
        return ((pc >> 2) ^ self.history) & self.mask

    def predict(self, pc):
        """Predicted direction for the branch at ``pc``."""
        return self.counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train the counter and shift the global history."""
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        elif counter > 0:
            self.counters[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & self.history_mask


class Btb:
    """Fully-associative branch target buffer with LRU replacement.

    LRU order is the insertion order of ``_table`` (oldest first):
    touching an entry re-inserts it at the MRU end, eviction pops the
    first key.  O(1) per operation where a list-based order would scan
    all 62 entries on every branch — the BTB is on the trained path of
    every control-flow instruction, so this is one of the hottest
    structures in the whole simulator.
    """

    def __init__(self, entries=62):
        self.entries = entries
        self._table = {}

    def lookup(self, pc):
        """Predicted target for ``pc``, or ``None`` on a BTB miss."""
        table = self._table
        target = table.get(pc)
        if target is not None:
            del table[pc]
            table[pc] = target
        return target

    def update(self, pc, target):
        table = self._table
        if pc in table:
            del table[pc]
        elif len(table) >= self.entries:
            del table[next(iter(table))]
        table[pc] = target


class ReturnAddressStack:
    """A tiny circular return-address stack (2 entries on Rocket)."""

    def __init__(self, entries=2):
        self.entries = entries
        self._stack = []

    def push(self, address):
        self._stack.append(address)
        if len(self._stack) > self.entries:
            self._stack.pop(0)

    def pop(self):
        """Predicted return address, or ``None`` when empty."""
        return self._stack.pop() if self._stack else None


class FrontEnd:
    """Combined predictor: returns the redirect penalty per control event.

    The caller reports each control-flow instruction with its actual
    outcome; the model trains itself and returns how many cycles the fetch
    redirect costs (0 when prediction was correct).
    """

    def __init__(self, config):
        self.config = config
        self.gshare = Gshare(config.gshare_entries)
        self.btb = Btb(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.branches = 0
        self.mispredicts = 0
        self.btb_misses = 0

    def conditional_branch(self, pc, taken, target):
        """A resolved conditional branch; returns the penalty in cycles."""
        self.branches += 1
        predicted_taken = self.gshare.predict(pc)
        predicted_target = self.btb.lookup(pc) if predicted_taken else None
        self.gshare.update(pc, taken)
        if taken:
            self.btb.update(pc, target)
        correct = (predicted_taken == taken) and \
            (not taken or predicted_target == target)
        if correct:
            return 0
        self.mispredicts += 1
        return self.config.miss_penalty

    def direct_jump(self, pc, target, is_call, return_address):
        """``jal``: target is known at decode; a BTB miss costs one cycle."""
        if is_call:
            self.ras.push(return_address)
        predicted = self.btb.lookup(pc)
        self.btb.update(pc, target)
        if predicted == target:
            return 0
        self.btb_misses += 1
        return 1

    def indirect_jump(self, pc, target, is_return, is_call, return_address):
        """``jalr``: predicted by the RAS for returns, else by the BTB."""
        self.branches += 1
        if is_return:
            predicted = self.ras.pop()
        else:
            predicted = self.btb.lookup(pc)
            self.btb.update(pc, target)
        if is_call:
            self.ras.push(return_address)
        if predicted == target:
            return 0
        self.mispredicts += 1
        return self.config.miss_penalty

    def pipeline_redirect(self):
        """A non-branch PC redirect (type misprediction slow-path jump)."""
        return self.config.miss_penalty
