"""Main-memory latency model: per-bank open-row DDR3 timing.

A cache miss pays the open-row latency when it hits the bank's open row
buffer and the closed-row latency otherwise (precharge + activate + CAS),
both already folded into 50MHz core cycles.
"""


class Dram:
    """Open-row tracking over ``banks`` interleaved by low line bits."""

    def __init__(self, config):
        self.config = config
        self._open_rows = [None] * config.banks
        self.accesses = 0
        self.row_hits = 0

    def access(self, addr):
        """Service a line fill for ``addr``; returns latency in cycles."""
        self.accesses += 1
        row = addr >> self.config.row_bits
        bank = (addr >> 6) % self.config.banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return self.config.open_row_latency
        self._open_rows[bank] = row
        return self.config.closed_row_latency

    @property
    def row_hit_rate(self):
        return self.row_hits / self.accesses if self.accesses else 0.0
