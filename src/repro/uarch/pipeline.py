"""Timing-approximate model of the 5-stage in-order Rocket pipeline.

:class:`Machine` wraps the functional :class:`~repro.sim.cpu.Cpu` and
charges cycles per retired instruction:

* one base cycle (single-issue in-order),
* I-cache and D-cache misses at DRAM latency (1-cycle hits),
* branch-direction/target mispredictions and type-misprediction redirects
  at the 2-cycle front-end penalty,
* load-use interlock stalls,
* multi-cycle execution units (mul/div/FP).

For a single-issue in-order core this per-instruction accounting captures
the same first-order effects as stage-by-stage simulation (there is no
overlap to mis-model beyond the load-use interlock) while staying fast
enough to run the full benchmark suite in pure Python.
"""

from repro.isa.instructions import (
    BRANCH_MNEMONICS,
    DIV_MNEMONICS,
    LOAD_MNEMONICS,
    STORE_MNEMONICS,
)
from repro.sim.errors import ExecutionLimitExceeded, IllegalInstruction
from repro.sim.trt import attribution_keys
from repro.uarch.branch import FrontEnd
from repro.uarch.cache import Cache
from repro.uarch.config import DEFAULT_CONFIG
from repro.uarch.counters import Counters
from repro.uarch.dram import Dram

# Instruction kind codes precomputed per program index for a lean run loop.
K_NORMAL = 0
K_BRANCH = 1
K_JAL = 2
K_JALR = 3
K_LOAD = 4
K_STORE = 5
K_TAGGED_ALU = 6
K_CHECK = 7      # tchk / chklb: redirect only
K_ECALL = 8
K_MUL = 9
K_DIV = 10
K_FP_ALU = 11
K_FP_DIV = 12
K_FP_SQRT = 13

_FP_ALU_MNEMONICS = frozenset(
    ["fadd.d", "fsub.d", "fmul.d", "fsgnj.d", "fsgnjn.d", "fsgnjx.d",
     "fmin.d", "fmax.d", "feq.d", "flt.d", "fle.d", "fcvt.l.d", "fcvt.w.d",
     "fcvt.d.l", "fcvt.d.w", "fmv.x.d", "fmv.d.x"])


def _kind_of(mnemonic):
    if mnemonic in BRANCH_MNEMONICS:
        return K_BRANCH
    if mnemonic == "jal":
        return K_JAL
    if mnemonic == "jalr":
        return K_JALR
    if mnemonic in LOAD_MNEMONICS and mnemonic != "chklb":
        return K_LOAD
    if mnemonic in STORE_MNEMONICS:
        return K_STORE
    if mnemonic in ("xadd", "xsub", "xmul"):
        return K_TAGGED_ALU
    if mnemonic in ("tchk", "chklb", "chklw"):
        return K_CHECK
    if mnemonic == "ecall":
        return K_ECALL
    if mnemonic in ("mul", "mulh", "mulhsu", "mulhu", "mulw"):
        return K_MUL
    if mnemonic in DIV_MNEMONICS:
        return K_DIV
    if mnemonic == "fdiv.d":
        return K_FP_DIV
    if mnemonic == "fsqrt.d":
        return K_FP_SQRT
    if mnemonic in _FP_ALU_MNEMONICS:
        return K_FP_ALU
    return K_NORMAL


class Attribution:
    """Maps program addresses to statistic buckets.

    ``bucket_ranges`` is a list of ``(name, start_addr, end_addr)`` used to
    attribute per-instruction counts (e.g. one bucket per bytecode
    handler); ``entry_points`` maps an address to a bytecode name whose
    execution count increments whenever that instruction retires.
    """

    def __init__(self, program, bucket_ranges=(), entry_points=None):
        count = len(program.instructions)
        self.bucket_names = []
        self.bucket_of = [-1] * count
        name_ids = {}
        for name, start, end in bucket_ranges:
            if name not in name_ids:
                name_ids[name] = len(self.bucket_names)
                self.bucket_names.append(name)
            bucket_id = name_ids[name]
            for addr in range(start, end, 4):
                self.bucket_of[program.instr_index(addr)] = bucket_id
        self.entry_names = []
        self.entry_of = [-1] * count
        entry_ids = {}
        for addr, name in (entry_points or {}).items():
            if name not in entry_ids:
                entry_ids[name] = len(self.entry_names)
                self.entry_names.append(name)
            self.entry_of[program.instr_index(addr)] = entry_ids[name]


class Machine:
    """A configured core: functional CPU plus timing state.

    ``telemetry`` optionally attaches a :class:`repro.telemetry.Telemetry`
    bus: the timing loop installs its cycle counter as the bus clock and
    emits bytecode-span, cache-miss and stall events.  Telemetry is
    purely observational — counters and cycles are identical with it on
    or off — and the disabled path adds no per-instruction work (event
    guards live inside branches that are already rare).
    """

    def __init__(self, cpu, config=None, attribution=None, telemetry=None,
                 use_blocks=True, use_traces=True):
        self.cpu = cpu
        self.config = config or DEFAULT_CONFIG
        self.icache = Cache(self.config.icache, name="icache")
        self.dcache = Cache(self.config.dcache, name="dcache")
        self.dram = Dram(self.config.dram)
        self.frontend = FrontEnd(self.config.branch)
        self.counters = Counters()
        self.attribution = attribution
        self.telemetry = telemetry
        self.use_blocks = use_blocks
        self.use_traces = use_traces
        self._kinds = [_kind_of(i.mnemonic)
                       for i in cpu.program.instructions]

    def run(self, max_instructions=200_000_000):
        """Run to completion, accumulating cycles and counters.

        Engine selection: the superblock trace engine
        (:mod:`repro.sim.traces`) by default, the basic-block engine
        (:mod:`repro.sim.blocks`) with ``use_traces=False``, and the
        per-instruction reference loop whenever something needs
        per-instruction visibility — attribution, telemetry (machine-
        or cpu-level), tracers that rebind ``cpu.step`` — or with
        ``use_blocks=False``.  All engines produce bit-identical
        counters and cycles.
        """
        if (self.use_blocks and self.attribution is None
                and self.telemetry is None
                and self.cpu.telemetry is None
                and "step" not in self.cpu.__dict__):
            # Traces additionally inline the TRT hit path, so an
            # instance-rebound ``trt.lookup`` (telemetry wrapper) must
            # fall back to the handler-calling block engine.
            if self.use_traces and "lookup" not in self.cpu.trt.__dict__:
                return self._run_traces(max_instructions)
            return self._run_blocks(max_instructions)
        return self._run_interpreted(max_instructions)

    def _run_blocks(self, max_instructions):
        """Block-at-a-time dispatch loop (see :mod:`repro.sim.blocks`)."""
        from repro.sim.blocks import block_table

        cpu = self.cpu
        table = block_table(cpu.program, self.config)
        blocks = table.blocks
        base = table.base
        icache = self.icache
        ic = icache.access
        dc = self.dcache.access
        dr = self.dram.access
        frontend = self.frontend
        counters = self.counters
        cycles = 0
        prev = -1

        while not cpu.halted:
            index = (cpu.pc - base) >> 2
            if 0 <= index < len(blocks):
                entry = blocks[index]
                if entry is None:
                    entry = table.block_at(index)
            else:
                raise IllegalInstruction(
                    "PC 0x%x outside program" % cpu.pc, pc=cpu.pc)
            if cpu.instret + entry[1] > max_instructions:
                # Close to the budget: fall back to single-instruction
                # blocks so the limit trips at the exact instruction.
                entry = table.single_at(index)
            c, prev = entry[0](cpu, prev, ic, dc, dr, frontend,
                               counters, icache)
            cycles += c
            if cpu.instret >= max_instructions:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions at PC 0x%x"
                    % (max_instructions, cpu.pc), pc=cpu.pc)

        return self._finalize(cycles)

    def _run_traces(self, max_instructions):
        """Trace-at-a-time dispatch loop (see :mod:`repro.sim.traces`).

        Identical to :meth:`_run_blocks` except that each dispatch also
        bumps the per-entry profile counter, and a counter hitting
        :data:`~repro.sim.traces.TRACE_THRESHOLD` triggers path
        recording — which executes per block while recording, so it is
        accounted exactly like any other unit call.
        """
        from repro.sim.traces import (
            TRACE_EVAL_WINDOW,
            TRACE_THRESHOLD,
            trace_table,
        )

        cpu = self.cpu
        table = trace_table(cpu.program, self.config,
                            getattr(cpu, "workload", None))
        entries = table.entries
        counts = table.counts
        meta = table.meta
        size = len(entries)
        base = table.base
        icache = self.icache
        ic = icache.access
        dc = self.dcache.access
        dr = self.dram.access
        frontend = self.frontend
        counters = self.counters
        cycles = 0
        prev = -1

        while not cpu.halted:
            index = (cpu.pc - base) >> 2
            if 0 <= index < size:
                entry = entries[index]
                if entry is None:
                    entry = table.entry_at(index)
            else:
                raise IllegalInstruction(
                    "PC 0x%x outside program" % cpu.pc, pc=cpu.pc)
            hot = counts[index] + 1
            counts[index] = hot
            if hot == TRACE_THRESHOLD:
                c, prev = table.record_and_run(
                    index, cpu, prev, ic, dc, dr, frontend, counters,
                    icache, max_instructions)
            else:
                done = cpu.instret
                if done + entry[1] > max_instructions:
                    # Close to the budget: fall back to the plain block
                    # or a single instruction so the limit trips at the
                    # exact instruction.
                    entry = table.budget_entry(
                        index, max_instructions - done)
                    c, prev = entry[0](cpu, prev, ic, dc, dr, frontend,
                                       counters, icache)
                else:
                    c, prev = entry[0](cpu, prev, ic, dc, dr, frontend,
                                       counters, icache)
                    m = meta[index]
                    if m is not None:
                        # Trace health: how much of the trace actually
                        # ran.  Mostly-early-exiting traces (stale path
                        # profile) are retired for re-recording.
                        m[1] += 1
                        m[2] += cpu.instret - done
                        if m[1] == TRACE_EVAL_WINDOW:
                            table.evaluate(index)
            cycles += c
            if cpu.instret >= max_instructions:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions at PC 0x%x"
                    % (max_instructions, cpu.pc), pc=cpu.pc)

        return self._finalize(cycles)

    def _run_interpreted(self, max_instructions):
        """Reference per-instruction loop (always used with attribution
        or telemetry attached)."""
        cpu = self.cpu
        config = self.config
        latency = config.latency
        icache = self.icache
        dcache = self.dcache
        dram = self.dram
        frontend = self.frontend
        counters = self.counters
        kinds = self._kinds
        base = cpu.program.base
        attribution = self.attribution
        bucket_counts = None
        entry_names = ()
        if attribution is not None:
            entry_names = attribution.entry_names
            bucket_counts = [0] * len(attribution.bucket_names)
            entry_counts = [0] * len(entry_names)
            entry_type_hits = [0] * len(entry_names)
            entry_type_misses = [0] * len(entry_names)
            # Flat spans: slot 0 is interpreter startup, slot i+1 is
            # entry i.  A span runs from one handler entry to the next,
            # so the slots partition instructions and cycles exactly.
            flat_instructions = [0] * (len(entry_names) + 1)
            flat_cycles = [0] * (len(entry_names) + 1)
            span_cycles = 0
            span_instret = 0
            bucket_of = attribution.bucket_of
            entry_of = attribution.entry_of
            current_entry = -1

        cycles = 0
        prev_load_rd = -1

        telemetry = self.telemetry
        ev_stall = ev_bytecode = None
        if telemetry is not None:
            telemetry.set_clock(lambda: cycles)
            if telemetry.wants("cache"):
                def _cache_miss_hook(name):
                    def on_miss(addr):
                        telemetry.emit({"cat": "cache", "name": name,
                                        "addr": addr})
                    return on_miss
                icache.on_miss = _cache_miss_hook("icache_miss")
                dcache.on_miss = _cache_miss_hook("dcache_miss")
            if telemetry.wants("stall"):
                ev_stall = telemetry
            if telemetry.wants("bytecode") and attribution is not None:
                ev_bytecode = telemetry

        while not cpu.halted:
            pc = cpu.pc
            index = (pc - base) >> 2
            instr = cpu.step()
            kind = kinds[index]

            if attribution is not None:
                bucket = bucket_of[index]
                if bucket >= 0:
                    bucket_counts[bucket] += 1
                entry = entry_of[index]
                if entry >= 0:
                    # Close the previous flat span: everything retired
                    # and charged up to (excluding) this entry
                    # instruction belongs to the previous bytecode.
                    flat_cycles[current_entry + 1] += cycles - span_cycles
                    flat_instructions[current_entry + 1] += \
                        cpu.instret - 1 - span_instret
                    span_cycles = cycles
                    span_instret = cpu.instret - 1
                    if ev_bytecode is not None:
                        if current_entry >= 0:
                            ev_bytecode.emit(
                                {"cat": "bytecode", "ph": "E",
                                 "name": entry_names[current_entry]})
                        ev_bytecode.emit({"cat": "bytecode", "ph": "B",
                                          "name": entry_names[entry]})
                    entry_counts[entry] += 1
                    current_entry = entry

            cycles += 1

            if prev_load_rd >= 0:
                if instr.rs1 == prev_load_rd or instr.rs2 == prev_load_rd:
                    cycles += latency.load_use_stall
                    counters.load_use_stalls += 1
                    if ev_stall is not None:
                        ev_stall.emit({"cat": "stall", "name": "load_use",
                                       "pc": pc})
                prev_load_rd = -1

            if not icache.access(pc):
                cycles += dram.access(pc)

            if kind:
                if kind == K_BRANCH:
                    cycles += frontend.conditional_branch(
                        pc, cpu.branch_taken, cpu.pc)
                elif kind == K_JAL:
                    cycles += frontend.direct_jump(
                        pc, cpu.pc, instr.rd == 1, pc + 4)
                elif kind == K_JALR:
                    is_return = instr.rd == 0 and instr.rs1 == 1
                    cycles += frontend.indirect_jump(
                        pc, cpu.pc, is_return, instr.rd == 1, pc + 4)
                elif kind == K_LOAD:
                    if not dcache.access(cpu.mem_addr):
                        cycles += dram.access(cpu.mem_addr)
                    if cpu.mem_addr2 is not None and \
                            not dcache.access(cpu.mem_addr2):
                        cycles += dram.access(cpu.mem_addr2)
                    if instr.rd:
                        prev_load_rd = instr.rd
                elif kind == K_STORE:
                    if not dcache.access(cpu.mem_addr):
                        cycles += dram.access(cpu.mem_addr)
                    if cpu.mem_addr2 is not None and \
                            not dcache.access(cpu.mem_addr2):
                        cycles += dram.access(cpu.mem_addr2)
                elif kind == K_TAGGED_ALU:
                    if cpu.redirect:
                        cycles += frontend.pipeline_redirect()
                        if attribution is not None and current_entry >= 0:
                            entry_type_misses[current_entry] += 1
                    else:
                        if attribution is not None and current_entry >= 0:
                            entry_type_hits[current_entry] += 1
                        if cpu.regs.fbit[instr.rd]:
                            cycles += latency.fp_alu if \
                                instr.mnemonic != "xmul" else latency.mul
                        elif instr.mnemonic == "xmul":
                            cycles += latency.mul
                elif kind == K_CHECK:
                    is_load = instr.mnemonic != "tchk"
                    if is_load and not dcache.access(cpu.mem_addr):
                        cycles += dram.access(cpu.mem_addr)
                    if cpu.redirect:
                        cycles += frontend.pipeline_redirect()
                        if attribution is not None and current_entry >= 0:
                            entry_type_misses[current_entry] += 1
                    else:
                        if attribution is not None and current_entry >= 0:
                            entry_type_hits[current_entry] += 1
                        if is_load and instr.rd:
                            prev_load_rd = instr.rd
                elif kind == K_ECALL:
                    cost = cpu.pending_host_cost
                    cpu.pending_host_cost = 0
                    counters.host_instructions += cost
                    counters.host_calls += 1
                    cycles += int(cost * latency.host_cpi)
                elif kind == K_MUL:
                    cycles += latency.mul
                elif kind == K_DIV:
                    cycles += latency.div
                elif kind == K_FP_ALU:
                    cycles += latency.fp_alu
                elif kind == K_FP_DIV:
                    cycles += latency.fp_div
                elif kind == K_FP_SQRT:
                    cycles += latency.fp_sqrt

            if cpu.instret >= max_instructions:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions at PC 0x%x"
                    % (max_instructions, cpu.pc),
                    pc=cpu.pc, mnemonic=instr.mnemonic)

        if attribution is not None:
            # Close the final flat span so the per-bytecode totals
            # partition the run exactly.
            flat_cycles[current_entry + 1] += cycles - span_cycles
            flat_instructions[current_entry + 1] += \
                cpu.instret - span_instret
            if ev_bytecode is not None and current_entry >= 0:
                ev_bytecode.emit({"cat": "bytecode", "ph": "E",
                                  "name": entry_names[current_entry]})

        self._finalize(cycles)
        if attribution is not None:
            counters.bucket_instructions = dict(
                zip(attribution.bucket_names, bucket_counts))
            counters.bytecode_counts = dict(
                zip(attribution.entry_names, entry_counts))
            counters.bytecode_type_hits = dict(
                zip(attribution.entry_names, entry_type_hits))
            counters.bytecode_type_misses = dict(
                zip(attribution.entry_names, entry_type_misses))
            flat_names = ["(startup)"] + list(entry_names)
            counters.bytecode_flat_instructions = {
                name: count for name, count
                in zip(flat_names, flat_instructions) if count}
            counters.bytecode_flat_cycles = {
                name: count for name, count
                in zip(flat_names, flat_cycles) if count}
        return counters

    def _finalize(self, cycles):
        """Publish run totals from the model state into the counters."""
        cpu = self.cpu
        counters = self.counters
        counters.cycles = cycles
        counters.core_instructions = cpu.instret
        counters.branches = self.frontend.branches
        counters.branch_mispredicts = self.frontend.mispredicts
        counters.btb_misses = self.frontend.btb_misses
        counters.icache_accesses = self.icache.accesses
        counters.icache_misses = self.icache.misses
        counters.dcache_accesses = self.dcache.accesses
        counters.dcache_misses = self.dcache.misses
        counters.type_hits = cpu.trt.hits
        counters.type_misses = cpu.trt.misses
        counters.overflow_traps = cpu.overflow_traps
        counters.chk_hits = cpu.chk_hits
        counters.chk_misses = cpu.chk_misses
        counters.trt_miss_keys = attribution_keys(cpu.trt.miss_keys)
        return counters
