"""IEEE-754 NaN boxing helpers (the SpiderMonkey layout of Section 4.2).

A 64-bit double whose 13 most-significant bits are all ones cannot be a
canonical number, so the engine reuses that space: bits [50:47] hold a
4-bit type tag and bits [46:0] the payload.  Plain doubles are stored as
their own bit pattern.
"""

import struct

MASK64 = (1 << 64) - 1
NAN_PREFIX_SHIFT = 51
NAN_PREFIX = 0x1FFF          # 13 ones
TAG_SHIFT = 47
TAG_MASK = 0x0F
PAYLOAD_MASK = (1 << 47) - 1


def is_boxed(bits):
    """True if ``bits`` is a boxed (non-double) value."""
    return (bits >> NAN_PREFIX_SHIFT) == NAN_PREFIX


def box(tag, payload):
    """Box a 4-bit ``tag`` and 47-bit ``payload`` into a NaN pattern."""
    return (NAN_PREFIX << NAN_PREFIX_SHIFT) | ((tag & TAG_MASK) << TAG_SHIFT) \
        | (payload & PAYLOAD_MASK)


def boxed_tag(bits):
    """Extract the 4-bit type tag from a boxed value."""
    return (bits >> TAG_SHIFT) & TAG_MASK


def boxed_payload(bits):
    """Extract the 47-bit payload from a boxed value."""
    return bits & PAYLOAD_MASK


def box_int32(tag_int, value):
    """Box a signed 32-bit integer under tag ``tag_int``."""
    return box(tag_int, value & 0xFFFFFFFF)


def unbox_int32(bits):
    """Recover the signed 32-bit integer payload."""
    raw = bits & 0xFFFFFFFF
    return raw - (1 << 32) if raw & (1 << 31) else raw


def double_to_bits(value):
    """Bit pattern of a Python float."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_double(bits):
    """Python float for a 64-bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def fits_int32(value):
    """True if ``value`` is representable as a signed 32-bit integer."""
    return -(1 << 31) <= value < (1 << 31)
