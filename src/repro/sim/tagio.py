"""Tag extraction and insertion logic for ``tld``/``tsd`` (Section 3.3).

The logic is reconfigured by three special-purpose registers:

* ``R_offset`` — which double-word holds the tag (same / next / previous)
  plus an MSB that enables NaN detection for FP-boxed layouts,
* ``R_shift`` — the tag's starting bit within that double-word,
* ``R_mask`` — an 8-bit mask selecting the tag width.

Two concrete configurations matter for the paper (Table 4): Lua's
struct layout (value dword followed by a tag byte in the next dword) and
SpiderMonkey's NaN boxing (tag inside the value dword, guarded by NaN
detection).
"""

from repro.isa.extension import (
    OFFSET_NAN_DETECT,
    OFFSET_SELF_TAG,
    TAG_DWORD_DISPLACEMENT,
)
from repro.sim import nanbox

MASK64 = (1 << 64) - 1


class TagCodec:
    """Extract/insert tags per the current special-register settings.

    ``fp_tags`` is the hardware table of FP-subtype tag values used to
    derive the F/I bit (Section 3.1 offers this as one of the two options).
    ``double_tag`` is the tag reported for an unboxed double when NaN
    detection is enabled; ``int_tag`` identifies boxed payloads that should
    be sign-extended from 32 bits (integer payload convention).
    """

    def __init__(self, fp_tags=(), double_tag=0, int_tag=None):
        self.offset = 0
        self.shift = 0
        self.mask = 0xFF
        self.fp_tags = frozenset(fp_tags)
        self.double_tag = double_tag
        self.int_tag = int_tag

    # -- configuration ----------------------------------------------------
    def set_offset(self, value):
        self.offset = value & 0b1111

    def set_shift(self, value):
        self.shift = value & 0x3F

    def set_mask(self, value):
        self.mask = value & 0xFF

    #: Fault-injectable configuration fields and their widths in bits —
    #: the three special registers of Section 3.3.  ``offset`` stays at
    #: its original 3 architectural bits even though ``set_offset`` now
    #: accepts the self-tag MSB: widening the fault window would shift
    #: every subsequent draw of the seeded fault sequence and invalidate
    #: committed campaign reports.
    FIELDS = (("offset", 3), ("shift", 6), ("mask", 8))

    def corrupt(self, field, mask):
        """Fault injection: XOR ``mask`` into one of the extractor
        special registers (``offset``/``shift``/``mask``), re-applying
        the architectural width clamp the setters enforce."""
        if field == "offset":
            self.set_offset(self.offset ^ mask)
        elif field == "shift":
            self.set_shift(self.shift ^ mask)
        elif field == "mask":
            self.set_mask(self.mask ^ mask)
        else:
            raise ValueError("unknown codec field %r" % field)

    @property
    def nan_detect(self):
        return bool(self.offset & OFFSET_NAN_DETECT)

    @property
    def self_tag(self):
        """Float Self-Tagging: FP values carry their tag in the float
        payload, so ``tld``/``tsd`` of an FP value skip the tag-plane
        memory access (the ``selftag`` scheme's timing elision)."""
        return bool(self.offset & OFFSET_SELF_TAG)

    @property
    def tag_displacement(self):
        """Byte displacement of the tag double-word from the value's."""
        return TAG_DWORD_DISPLACEMENT[self.offset & 0b11]

    def fbit_for(self, tag):
        """F/I bit for ``tag`` per the FP-subtype table."""
        return 1 if tag in self.fp_tags else 0

    # -- tld --------------------------------------------------------------
    def extract(self, value_dword, tag_dword):
        """Return ``(value, tag, fbit)`` for a tagged load.

        ``tag_dword`` is the contents of the tag's double-word; under NaN
        detection it is the value itself and is ignored otherwise when the
        displacement is zero.
        """
        if self.nan_detect:
            if nanbox.is_boxed(value_dword):
                tag = (value_dword >> self.shift) & self.mask
                value = value_dword & nanbox.PAYLOAD_MASK
                if self.int_tag is not None and tag == self.int_tag:
                    value = nanbox.unbox_int32(value_dword) & MASK64
                return value, tag, 0
            return value_dword, self.double_tag, 1
        tag = (tag_dword >> self.shift) & self.mask
        return value_dword, tag, self.fbit_for(tag)

    # -- tsd --------------------------------------------------------------
    def insert(self, value, tag, fbit, old_tag_dword):
        """Return ``(value_dword, tag_dword)`` for a tagged store.

        ``tag_dword`` is ``None`` when no separate tag write is needed
        (NaN-boxed layouts store a single double-word).
        """
        if self.nan_detect:
            if fbit:
                return value & MASK64, None
            boxed = (nanbox.NAN_PREFIX << nanbox.NAN_PREFIX_SHIFT) \
                | ((tag & self.mask) << self.shift) \
                | (value & nanbox.PAYLOAD_MASK)
            return boxed, None
        field = (self.mask & 0xFF) << self.shift
        tag_dword = (old_tag_dword & ~field & MASK64) \
            | ((tag & self.mask) << self.shift)
        return value & MASK64, tag_dword
