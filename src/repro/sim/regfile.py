"""Register files: the unified tagged integer file and the baseline FP file.

The Typed Architecture extends every integer register with an 8-bit type
field and a one-bit F/I flag (Section 3.1).  Values written by untyped
instructions are tagged :data:`~repro.isa.extension.TYPE_UNTYPED` so they
bypass type checking.  The file is *unified*: polymorphic instructions can
perform FP arithmetic directly on it, while the baseline handlers keep
using the separate ``f`` registers.
"""

from repro.isa.extension import TYPE_UNTYPED

MASK64 = (1 << 64) - 1


class UnifiedRegisterFile:
    """32 integer registers, each with value, type tag and F/I bit."""

    def __init__(self):
        self.value = [0] * 32
        self.type = [TYPE_UNTYPED] * 32
        self.fbit = [0] * 32

    def write(self, index, value):
        """Untyped write: sets the value and clears tag state."""
        if index == 0:
            return
        self.value[index] = value & MASK64
        self.type[index] = TYPE_UNTYPED
        self.fbit[index] = 0

    def write_typed(self, index, value, tag, fbit):
        """Typed write from ``tld`` or a tagged ALU instruction."""
        if index == 0:
            return
        self.value[index] = value & MASK64
        self.type[index] = tag & 0xFF
        self.fbit[index] = 1 if fbit else 0

    def set_tag(self, index, tag, fbit):
        """Tag-only update (``tset``)."""
        if index == 0:
            return
        self.type[index] = tag & 0xFF
        self.fbit[index] = 1 if fbit else 0

    def corrupt_value(self, index, mask):
        """Fault injection: XOR ``mask`` into a register's *value* bits.

        ``x0`` is hardwired to zero in real silicon (no storage cell to
        upset), so faults aimed at it are dropped — mirroring hardware.
        """
        if index == 0:
            return
        self.value[index] ^= mask & MASK64

    def corrupt_tag(self, index, mask, flip_fbit=False):
        """Fault injection: XOR ``mask`` into a register's 8-bit type
        tag, optionally flipping the F/I bit as well."""
        if index == 0:
            return
        self.type[index] ^= mask & 0xFF
        if flip_fbit:
            self.fbit[index] ^= 1

    def snapshot(self):
        """Copy of (value, type, fbit) arrays, e.g. for context switching."""
        return (list(self.value), list(self.type), list(self.fbit))

    def restore(self, state):
        value, type_, fbit = state
        self.value[:] = value
        self.type[:] = type_
        self.fbit[:] = fbit
        self.value[0] = 0


class FpRegisterFile:
    """32 baseline FP registers holding raw IEEE-754 bit patterns."""

    def __init__(self):
        self.bits = [0] * 32

    def write(self, index, bits):
        self.bits[index] = bits & MASK64

    def read(self, index):
        return self.bits[index]
