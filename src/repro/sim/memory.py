"""Flat little-endian byte-addressable memory.

A single ``bytearray`` keeps accesses fast in pure Python; the sizes used
by the benchmarks (a few megabytes) make sparse paging unnecessary.
"""

from repro.sim.errors import MemoryError_

MASK64 = (1 << 64) - 1


class Memory:
    """``size`` bytes of zero-initialised RAM starting at address 0."""

    def __init__(self, size=16 * 1024 * 1024):
        self.size = size
        self.data = bytearray(size)

    def _check(self, addr, width):
        if addr < 0 or addr + width > self.size:
            raise MemoryError_("access of %d bytes at 0x%x outside memory "
                               "of %d bytes" % (width, addr, self.size))

    def load(self, addr, width, signed=False):
        """Load ``width`` bytes at ``addr`` as an integer."""
        self._check(addr, width)
        return int.from_bytes(self.data[addr:addr + width], "little",
                              signed=signed)

    def store(self, addr, width, value):
        """Store the low ``width`` bytes of ``value`` at ``addr``."""
        self._check(addr, width)
        self.data[addr:addr + width] = (value & ((1 << (8 * width)) - 1)) \
            .to_bytes(width, "little")

    # Convenience accessors used heavily by the engines.
    def load_u8(self, addr):
        self._check(addr, 1)
        return self.data[addr]

    def load_u64(self, addr):
        self._check(addr, 8)
        return int.from_bytes(self.data[addr:addr + 8], "little")

    def store_u8(self, addr, value):
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def store_u64(self, addr, value):
        self._check(addr, 8)
        self.data[addr:addr + 8] = (value & MASK64).to_bytes(8, "little")

    def corrupt(self, addr, mask):
        """Fault injection: XOR ``mask`` into the byte at ``addr``.

        Returns ``True`` when the address is in range; an out-of-range
        fault target is absorbed (nothing to upset) rather than raised —
        the injector must never crash the campaign itself.
        """
        if not 0 <= addr < self.size:
            return False
        self.data[addr] ^= mask & 0xFF
        return True

    def write_bytes(self, addr, payload):
        """Bulk write ``payload`` (bytes-like) at ``addr``."""
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def read_bytes(self, addr, length):
        """Bulk read ``length`` bytes at ``addr``."""
        self._check(addr, length)
        return bytes(self.data[addr:addr + length])
