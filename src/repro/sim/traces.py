"""Superblock trace engine: hot blocks chained across taken branches.

The basic-block engine (:mod:`repro.sim.blocks`) pays one Python-level
dispatch per basic block — and guest interpreter blocks are short, so
the dispatch (PC arithmetic, table lookup, budget check, call) is still
a large fraction of host time.  This module chains *hot* blocks into
superblock traces, dynamic-binary-translation style, so the dispatch is
paid once per trace instead:

* **Profile-driven formation.**  The trace dispatch loop counts entries
  per block; when a block's count reaches :data:`TRACE_THRESHOLD` the
  runtime records the concrete path taken from that head — executing
  per block while recording — until the path returns to the head, hits
  an unchainable exit, or reaches :data:`MAX_TRACE_BLOCKS`.
* **Static validation.**  Each recorded transition is justified against
  the program text (:func:`_chain_segment`): a conditional branch whose
  taken target matches, a ``jal`` whose target matches, a ``jalr``
  (guarded on the assumed target), or the unconditional fall-through at
  a :data:`~repro.sim.blocks.MAX_BLOCK_LEN` cut.  Transitions produced
  by dynamic redirects (type mispredictions, checked-load misses,
  ``thdl`` deoptimisation) cannot be justified and truncate the trace.
* **Guarded side exits.**  The chained unit is compiled by the same
  per-instruction emitter as basic blocks
  (:class:`repro.sim.blocks._Emitter`), so a guard failure — branch
  went the other way, ``jalr`` landed elsewhere, a typed op redirected
  — exits the trace with exactly the front-end training calls, cycle
  charges and counter updates the reference loop pays on that path.
  Side exits are architecturally exact: nothing is rolled back or
  re-executed, control simply deopts to the per-block engine at the
  exit PC.

Counter identity with both the block engine and the per-instruction
reference loop is enforced by ``tests/test_traces.py``; traces never
change *what* is simulated, only how many host-level dispatches it
costs.

Tables are cached per ``(program, machine-config)`` like block tables
(the underlying :class:`~repro.sim.blocks.BlockTable` is shared with
the block engine), so profiles and compiled traces persist across runs
and across sweep cells in one process.
"""

import weakref

from repro.engines.ir import (
    BRANCH_COND as _BRANCH_COND,
    MASK64 as _M,
    MAX_BLOCK_LEN,
    block_extent,
)
from repro.sim.blocks import _Emitter, block_table

#: A block becomes a trace head after this many dispatch-loop entries.
TRACE_THRESHOLD = 16

#: Recording stops after this many chained blocks even without closing
#: the loop back to the head.
MAX_TRACE_BLOCKS = 64

#: Hard cap on instructions in one compiled trace: bounds generated
#: code size and the near-budget fallback window.
MAX_TRACE_INSTRS = 512

#: A trace is evaluated after this many dispatches (see
#: :meth:`TraceTable.evaluate`).
TRACE_EVAL_WINDOW = 32

#: Evaluation keeps a trace whose average instructions per dispatch
#: are at least this factor of its *first-guard span* — the
#: instructions a dispatch executes when the recorded path is wrong
#: immediately, i.e. what the head's block dispatch would have done.
#: One trace dispatch must therefore replace at least this many
#: head-block dispatches.  A trace that side-exits partway can still
#: clear this easily (30% of a 200-instruction trace is many blocks'
#: worth of work in one dispatch); only a trace doing no better than
#: the plain block — its recorded path no longer taken at all — is
#: retired for re-profiling.  The bar is capped at half the trace
#: length so a trace whose first guard sits near its end (which
#: executes almost everything even when it exits there) is never
#: unbeatable.
TRACE_PROFIT_FACTOR = 2.0

#: Consecutive healthy evaluation windows after which a trace
#: *graduates*: health metering stops (its ``meta`` slot is cleared)
#: and the dispatch loop runs it with zero bookkeeping from then on —
#: the same move tiered JITs make when they stop profiling mature
#: code.  A workload phase change after graduation is still correct
#: (guards exit to the block engine); it just runs at guard-exit
#: speed instead of being re-recorded.
TRACE_MATURE_WINDOWS = 4

#: Bound on retire/re-record cycles per head; re-records are cheap
#: once a path is in the per-head compiled cache, so this is a large
#: safety stop, with exponential backoff doing the real damping.
MAX_RERECORDS = 32

#: Bound on *distinct compiled paths* per head.  Compiling a trace is
#: the expensive step (CPython ``compile`` on a few thousand generated
#: lines); a head whose hot path keeps shifting stops getting new
#: compiles after this many and swaps between its cached traces (or
#: the plain block) from then on.
MAX_TRACES_PER_HEAD = 4


class TraceTable:
    """Per-``(program, config)`` trace state for the dispatch loop.

    ``entries[index]`` is the ``(fn, count)`` unit dispatched at
    ``index`` — a compiled trace for hot heads, otherwise the shared
    :class:`~repro.sim.blocks.BlockTable` entry — or ``None`` before
    first use.  ``counts[index]`` is the dispatch-loop entry profile
    driving trace formation.
    """

    def __init__(self, program, config):
        self.blocks = block_table(program, config)
        size = len(self.blocks.instructions)
        self.base = self.blocks.base
        self.entries = [None] * size
        self.counts = [0] * size
        #: ``meta[head]`` is ``[profit_bar, dispatches, executed,
        #: healthy_windows]`` for an installed trace still under health
        #: metering (``None`` for no trace *or* a graduated one) — the
        #: dispatch loop feeds it and triggers :meth:`evaluate` once
        #: per window.  ``profit_bar`` is the per-dispatch instruction
        #: bar the trace must average to stay installed (see
        #: :data:`TRACE_PROFIT_FACTOR`).
        self.meta = [None] * size
        #: ``head -> {path_tuple: entry}``: every trace ever compiled,
        #: so retire/re-record cycles (and workload switches on a
        #: shared table) reinstall known paths without recompiling.
        self._compiled = {}
        self._rerecorded = {}
        self.traces = 0
        self.trace_instructions = 0
        self.trace_failures = 0
        self.retired = 0

    def entry_at(self, index):
        """Install and return the block-engine entry for ``index``."""
        entry = self.blocks.block_at(index)
        self.entries[index] = entry
        return entry

    def budget_entry(self, index, remaining):
        """The largest exact unit that cannot overrun ``remaining``
        instructions: the plain block, or a single instruction so the
        ``ExecutionLimitExceeded`` point stays exact."""
        entry = self.blocks.block_at(index)
        if entry[1] > remaining:
            entry = self.blocks.single_at(index)
        return entry

    def record_and_run(self, index, cpu, prev, ic, dc, dr, fe, ct, icc,
                       max_instructions):
        """Record the hot path from ``index`` while executing it per
        block, then compile and install a trace for the head.

        Returns ``(cycles, prev)`` for the span actually executed, so
        the dispatch loop treats recording like any other unit call.
        Recording stops when the path returns to the head (a loop
        closed), leaves the program, reaches :data:`MAX_TRACE_BLOCKS`,
        halts, or nears the instruction budget.
        """
        blocks = self.blocks
        base = self.base
        size = len(self.entries)
        head = index
        path = [index]
        cycles = 0
        while True:
            entry = blocks.block_at(path[-1])
            if cpu.instret + entry[1] > max_instructions:
                break
            c, prev = entry[0](cpu, prev, ic, dc, dr, fe, ct, icc)
            cycles += c
            if cpu.halted or cpu.instret >= max_instructions:
                break
            nxt = (cpu.pc - base) >> 2
            if not 0 <= nxt < size:
                break
            if nxt == head or len(path) >= MAX_TRACE_BLOCKS:
                break
            path.append(nxt)
        self._install(head, path)
        return cycles, prev

    def _install(self, head, path):
        """Compile (or fetch from the per-head cache) a trace entry
        for the recorded ``path``; anything unchainable degrades to
        the plain block."""
        compiled = None
        if len(path) > 1:
            per_head = self._compiled.setdefault(head, {})
            key = tuple(path)
            compiled = per_head.get(key)
            if compiled is None and len(per_head) < MAX_TRACES_PER_HEAD:
                try:
                    segments = _plan(self.blocks, path)
                    if len(segments) > 1:
                        entry = _compile_trace(self.blocks, segments)
                        span = _first_guard_span(self.blocks, segments)
                        bar = min(TRACE_PROFIT_FACTOR * span,
                                  0.5 * entry[1])
                        compiled = (entry, bar)
                        self.traces += 1
                        self.trace_instructions += entry[1]
                        per_head[key] = compiled
                except Exception as err:  # noqa: BLE001 — degrade
                    from repro.telemetry.core import record_degradation

                    self.trace_failures += 1
                    record_degradation({
                        "name": "trace_compile_failed",
                        "pc": self.base + 4 * head,
                        "blocks": len(path),
                        "error": "%s: %s" % (type(err).__name__, err),
                    })
        if compiled is None:
            self.entries[head] = self.blocks.block_at(head)
        else:
            entry, bar = compiled
            self.meta[head] = [bar, 0, 0, 0]
            self.entries[head] = entry

    def evaluate(self, head):
        """Keep or retire the trace at ``head`` after its evaluation
        window.

        The test is *profitability against the block alternative*: a
        trace averaging at least its profit bar (see
        :data:`TRACE_PROFIT_FACTOR`) of instructions per dispatch
        stays installed — even one that side-exits partway amortises
        many block dispatches into one.  A trace doing no better than
        the plain block was recorded under a path profile that no
        longer holds (a later phase of the workload), so it is
        retired: the head reverts to the plain block and re-profiles,
        re-recording a trace for the path that is hot *now*.  Retiring
        only swaps which exact compiled units run; counters are
        unaffected.
        """
        meta = self.meta[head]
        bar, dispatches, executed, healthy = meta
        done = self._rerecorded.get(head, 0)
        if executed >= bar * dispatches \
                or done >= MAX_RERECORDS:
            # Healthy (or out of re-record budget): keep the trace.
            # After TRACE_MATURE_WINDOWS consecutive healthy windows
            # it graduates — metering stops and its dispatches carry
            # no bookkeeping at all.
            healthy += 1
            if healthy >= TRACE_MATURE_WINDOWS or done >= MAX_RERECORDS:
                self.meta[head] = None
                return
            meta[1] = 0
            meta[2] = 0
            meta[3] = healthy
            return
        self._rerecorded[head] = done + 1
        self.retired += 1
        self.meta[head] = None
        self.entries[head] = self.blocks.block_at(head)
        # Re-profile with exponential backoff: each successive
        # re-record needs geometrically more dispatches first, so a
        # head whose hot path keeps shifting spends its time in the
        # plain block instead of oscillating between traces.
        self.counts[head] = -(TRACE_THRESHOLD << min(done, 8))


def _chain_segment(blocks, s, t):
    """Statically justify the recorded transition ``s -> t``.

    Returns ``(start, stop, chain)`` — the instruction span emitted for
    this segment and the chain disposition of its last instruction (see
    :class:`repro.sim.blocks._Emitter`) — or ``None`` if no static exit
    of the block at ``s`` can produce entry ``t`` (e.g. the transition
    came from a dynamic redirect).
    """
    instrs = blocks.instructions
    base = blocks.base
    size = len(instrs)
    stop = min(size, s + MAX_BLOCK_LEN)
    for j in range(s, stop):
        i = instrs[j]
        mn = i.mnemonic
        pc = base + 4 * j
        if mn in _BRANCH_COND:
            target = (pc + i.imm) & _M
            if (target - base) >> 2 == t:
                return (s, j + 1, ("taken", target))
            continue  # assumed not taken: emitted with a taken side exit
        if mn == "jal":
            target = (pc + i.imm) & _M
            if (target - base) >> 2 == t:
                return (s, j + 1, ("jal", target))
            return None
        if mn == "jalr":
            return (s, j + 1, ("jalr", base + 4 * t))
        if mn in ("ecall", "ebreak"):
            return None
    if stop < size and stop == t:
        return (s, stop, ("fall",))  # MAX_BLOCK_LEN cut: unconditional
    return None


def _plan(blocks, path):
    """Turn a recorded entry path into emitter segments.

    Chained segments cover every transition that can be statically
    justified (stopping at the first that cannot, or at
    :data:`MAX_TRACE_INSTRS`); the final segment is the full block at
    the last chained-to entry, emitted with plain block-mode exits —
    which is also what closes a loop back to the head.
    """
    segments = []
    total = 0
    final = path[0]
    for s, t in zip(path, path[1:]):
        seg = _chain_segment(blocks, s, t)
        if seg is None:
            break
        total += seg[1] - seg[0]
        if total > MAX_TRACE_INSTRS:
            break
        segments.append(seg)
        final = t
    segments.append((final, block_extent(blocks.instructions, final,
                                         MAX_BLOCK_LEN), None))
    return segments


def _first_guard_span(blocks, segments):
    """Instructions executed when the first guard in the trace fails.

    This is what a dispatch costs when the recorded path is wrong from
    the start — i.e. what the plain head block would have executed —
    and therefore the yardstick for trace profitability.  The first
    guard is the first conditional branch anywhere in the trace
    (interior ones are emitted assumed-not-taken with a taken side
    exit) or a guarded ``jalr`` chain; a trace with no guard at all
    cannot fail early and the span is its full length.
    """
    instrs = blocks.instructions
    span = 0
    for start, stop, chain in segments:
        for j in range(start, stop):
            span += 1
            if instrs[j].mnemonic in _BRANCH_COND:
                return span
        if chain is not None and chain[0] == "jalr":
            return span
    return span


def _compile_trace(blocks, segments):
    """Generate, ``exec`` and return ``(fn, count)`` for a trace.

    Traces are compiled with the emitter's ``fast`` mode: the
    front-end, cache and memory helpers are inlined on their hot paths
    (see :class:`repro.sim.blocks._Emitter`), while plain blocks keep
    the PR 3 code shape.
    """
    emitter = _Emitter(blocks, fast=True)
    for start, stop, chain in segments:
        if chain is None or chain[0] == "fall":
            for index in range(start, stop):
                emitter.emit(index)
        else:
            for index in range(start, stop - 1):
                emitter.emit(index)
            emitter.emit(stop - 1, chain=chain)
    emitter.finish(segments[-1][1])
    head_pc = blocks.base + 4 * segments[0][0]
    fn = emitter.build("<trace@0x%x>" % head_pc)
    return fn, emitter.k


# One table per (program, machine config, guest workload), keyed weakly
# on the program like blocks._TABLES.
_TABLES = weakref.WeakKeyDictionary()


def trace_table(program, config, workload=None):
    """The (shared, lazily filled) :class:`TraceTable` for a program
    under a machine configuration, specialised to a guest workload.

    Block tables are guest-independent (pure interpreter text) and
    shared per ``(program, config)``; trace state is *profile* — the
    hot paths through the interpreter are driven by the guest program
    it runs — so it is additionally keyed by the ``workload`` token the
    engine stamps on the CPU (see ``vm.prepare``).  This mirrors a real
    DBT's per-process code cache: two guests never pollute each other's
    traces, while repeated runs of the same guest (warm-up, sweeps,
    batch cells) reuse profiles and compiled traces for free.
    """
    per_program = _TABLES.get(program)
    if per_program is None:
        per_program = {}
        _TABLES[program] = per_program
    key = (config, workload)
    table = per_program.get(key)
    if table is None:
        table = TraceTable(program, config)
        per_program[key] = table
    return table
