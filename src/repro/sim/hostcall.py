"""Host-call interface: the simulator's stand-in for native library code.

The real interpreters spend a large fraction of time in native C library
routines (string hashing, allocation, printf, file I/O).  Writing a libc in
assembly is out of scope, so the engines invoke *host services* through
``ecall``: the service id goes in ``a7``, arguments in ``a0``-``a6`` and
the result comes back in ``a0``.

Each service declares a ``cost`` in equivalent native instructions.  The
cost is charged identically on every machine configuration, which is what
preserves the paper's Amdahl's-law effect: benchmarks dominated by CALL
bytecodes (library time) show smaller speedups (Section 7.1).
"""

from repro.sim.errors import HostCallError

# Calling convention registers.
ARG_REGISTERS = (10, 11, 12, 13, 14, 15, 16)  # a0..a6
SERVICE_REGISTER = 17  # a7
RETURN_REGISTER = 10  # a0

# Reserved service ids common to every engine.
SERVICE_EXIT = 0
SERVICE_PUTCHAR = 1


class HostService:
    """One callable service: ``handler(machine, *args) -> int`` result.

    ``cost`` is either a fixed instruction count or a callable
    ``cost(args) -> int`` for services whose native cost depends on the
    arguments (e.g. a builtin-dispatch service).
    """

    def __init__(self, service_id, name, handler, cost):
        self.service_id = service_id
        self.name = name
        self.handler = handler
        self.cost = cost

    def cost_for(self, args):
        return self.cost(args) if callable(self.cost) else self.cost


class HostInterface:
    """Registry of host services shared by an engine's runtime."""

    def __init__(self):
        self._services = {}
        self.calls = 0
        self.charged_instructions = 0
        self.calls_by_service = {}

    def register(self, service_id, name, handler, cost):
        """Register ``handler`` under ``service_id`` with a fixed cost."""
        if service_id in self._services:
            raise ValueError("service id %d already registered" % service_id)
        self._services[service_id] = HostService(service_id, name, handler,
                                                 cost)

    def service(self, service_id):
        try:
            return self._services[service_id]
        except KeyError:
            raise HostCallError("unknown host service %d" % service_id) \
                from None

    def dispatch(self, cpu):
        """Execute the service selected by ``a7``; returns its cost."""
        service = self.service(cpu.regs.value[SERVICE_REGISTER])
        args = [cpu.regs.value[reg] for reg in ARG_REGISTERS]
        result = service.handler(cpu, *args)
        if result is not None:
            cpu.regs.write(RETURN_REGISTER, result)
        cost = service.cost_for(args)
        self.calls += 1
        self.charged_instructions += cost
        self.calls_by_service[service.name] = \
            self.calls_by_service.get(service.name, 0) + 1
        return cost
