"""Simulator exception hierarchy."""


class SimulationError(Exception):
    """Base class for all simulator faults."""


class MemoryError_(SimulationError):
    """Out-of-range or misaligned memory access."""


class IllegalInstruction(SimulationError):
    """Executed an instruction the core cannot handle."""


class HostCallError(SimulationError):
    """A host (runtime service) call failed or was unknown."""


class ExecutionLimitExceeded(SimulationError):
    """The instruction budget for a run was exhausted."""
