"""Simulator exception hierarchy.

Every fault carries *where* it happened: ``pc`` (the program counter at
the time of the fault) and ``mnemonic`` (the opcode being executed, when
known).  The fault-injection campaign (:mod:`repro.faults`) classifies
any raised :class:`SimulationError` as a *detected* event, and the
context fields are what let the campaign report say which instruction
tripped the detector without re-running the simulation.
"""


class SimulationError(Exception):
    """Base class for all simulator faults.

    ``pc`` and ``mnemonic`` locate the faulting instruction; either may
    be ``None`` when the raise site cannot know it (the context is then
    filled in by the nearest frame that can — see
    :meth:`with_context`).
    """

    def __init__(self, message, pc=None, mnemonic=None):
        super().__init__(message)
        self.pc = pc
        self.mnemonic = mnemonic

    def with_context(self, pc=None, mnemonic=None):
        """Fill in missing location context; never overwrites fields the
        original raise site already set.  Returns ``self`` so callers
        can ``raise err.with_context(...)``."""
        if self.pc is None:
            self.pc = pc
        if self.mnemonic is None:
            self.mnemonic = mnemonic
        return self

    def __str__(self):
        text = super().__str__()
        where = []
        if self.pc is not None:
            where.append("pc=0x%x" % self.pc)
        if self.mnemonic is not None:
            where.append("op=%s" % self.mnemonic)
        return "%s [%s]" % (text, " ".join(where)) if where else text


class MemoryError_(SimulationError):
    """Out-of-range or misaligned memory access."""


class IllegalInstruction(SimulationError):
    """Executed an instruction the core cannot handle."""


class HostCallError(SimulationError):
    """A host (runtime service) call failed or was unknown."""


class ExecutionLimitExceeded(SimulationError):
    """The instruction budget for a run was exhausted.

    The fault-injection watchdog uses this as the *hang* detector: a
    corrupted run that never reaches ``ebreak`` trips the budget at an
    exact, deterministic instruction."""
