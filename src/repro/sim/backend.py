"""Optional compiled backend for the generated block/trace closures.

The superinstruction engines (:mod:`repro.sim.blocks`,
:mod:`repro.sim.traces`) generate Python source per unit and
``compile()``/``exec`` it at first dispatch.  The generated text is
deterministic per ``(interpreter program, machine config)``, yet every
process re-``compile()``s it from scratch — and CPython ``compile`` on
the generated code is the dominant cold-start cost (roughly 19 ms per
thousand lines; a 512-instruction trace is ~100 ms).

``tools/build_backend.py`` builds those units ahead of time into a
content-addressed cache this module serves at runtime:

* ``cython`` / ``mypyc`` — when one of them is importable, the build
  emits a module of the recorded units and compiles it to a native
  extension (fastest, optional: neither ships in the default
  container);
* ``marshal`` — always available: each unit's code object is
  pre-compiled once and marshalled; loading is ``marshal.loads``, an
  order of magnitude cheaper than ``compile``.

Selection is via :data:`BACKEND_ENV` (``REPRO_BLOCK_BACKEND``):

``"python"`` / unset
    Pure-Python ``compile``+``exec`` (the default everywhere).
``"auto"``
    Use :data:`DEFAULT_BUILD_DIR` if a valid build manifest is there,
    else fall through to pure Python silently.
``a path``
    Use the build directory at that path; a missing or incompatible
    build records one degradation event and falls through.

The backend only changes *how the same generated source becomes a
callable* — never the source itself — so counters are bit-identical
across backends by construction; ``tests/test_backend_parity.py``
enforces it and the absence of any build never breaks a test or CLI
path.
"""

import hashlib
import importlib.util
import json
import marshal
import os

#: Environment variable selecting the backend (see module docstring).
BACKEND_ENV = "REPRO_BLOCK_BACKEND"

#: Where ``tools/build_backend.py`` writes (and ``auto`` looks for)
#: the build, relative to the repository root / current directory.
DEFAULT_BUILD_DIR = os.path.join("build", "block_backend")

#: Schema of ``manifest.json`` inside a build directory.
MANIFEST_VERSION = 1


def source_key(source):
    """Content address of one generated unit (its source text)."""
    return hashlib.sha256(source.encode()).hexdigest()[:32]


class BackendUnavailable(Exception):
    """A requested build directory is missing or incompatible."""


class CompiledBackend:
    """Serves pre-built unit callables from one build directory.

    ``lookup(source, namespace)`` returns the unit function (executed
    into ``namespace`` for marshalled code objects, bound natively for
    extension builds) or ``None`` when the unit is not in the build —
    the caller then compiles from source as usual, so a partial build
    only accelerates what it covers.
    """

    def __init__(self, root):
        path = os.path.join(root, "manifest.json")
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as err:
            raise BackendUnavailable("no backend manifest at %s (%s)"
                                     % (path, err))
        if manifest.get("manifest_version") != MANIFEST_VERSION:
            raise BackendUnavailable(
                "manifest version %r != %d"
                % (manifest.get("manifest_version"), MANIFEST_VERSION))
        if manifest.get("magic") != _magic():
            # Marshalled code objects are interpreter-build specific.
            raise BackendUnavailable(
                "build was made by a different Python (magic %r != %r)"
                % (manifest.get("magic"), _magic()))
        self.root = root
        self.kind = manifest.get("backend", "marshal")
        self.units = manifest.get("units", {})
        self.hits = 0
        self.misses = 0
        self._native = None
        if self.kind in ("cython", "mypyc"):
            self._native = _load_native(root, manifest)

    def lookup(self, source, namespace):
        """The pre-built callable for ``source``, or ``None``."""
        key = source_key(source)
        name = self.units.get(key)
        if name is None:
            self.misses += 1
            return None
        if self._native is not None:
            fn = self._native.bind(name, namespace)
            if fn is None:
                self.misses += 1
                return None
            self.hits += 1
            return fn
        try:
            with open(os.path.join(self.root, name), "rb") as handle:
                code = marshal.loads(handle.read())
        except (OSError, ValueError, EOFError):
            self.misses += 1
            return None
        exec(code, namespace)
        self.hits += 1
        return namespace["_block"]


class _NativeUnits:
    """Adapter over a compiled extension of units.

    The extension exposes one function per unit plus a module-level
    ``BINDINGS`` dict its functions read their free names from.  The
    engines build exactly one interpreter program per (engine, config)
    per process, so the module is bound to the first namespace that
    uses it; a unit asked for under a *different* namespace is refused
    (``None`` → source fallback) rather than silently cross-bound.
    """

    def __init__(self, module):
        self.module = module
        self._bound = None

    def bind(self, name, namespace):
        fn = getattr(self.module, name, None)
        if fn is None:
            return None
        bindings = self.module.BINDINGS
        if self._bound is None:
            bindings.update(namespace)
            self._bound = {key: namespace[key]
                           for key in ("_h", "_i") if key in namespace}
        else:
            for key, value in self._bound.items():
                if namespace.get(key) is not value:
                    return None
        return fn


def _load_native(root, manifest):
    module_file = manifest.get("module")
    if not module_file:
        raise BackendUnavailable("native manifest names no module")
    path = os.path.join(root, module_file)
    if not os.path.exists(path):
        raise BackendUnavailable("native module %s is missing" % path)
    spec = importlib.util.spec_from_file_location("repro_block_units",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return _NativeUnits(module)


def _magic():
    """The running interpreter's bytecode magic, as an int."""
    return int.from_bytes(importlib.util.MAGIC_NUMBER[:2], "little")


# -- runtime selection --------------------------------------------------------

_ACTIVE = None
_RESOLVED = False

#: When not ``None``, every unit that falls through to ``compile`` is
#: recorded as ``{key: (source, filename)}`` — the build tool's capture
#: hook (see :func:`record_units`).
_RECORDER = None


def reset():
    """Forget the resolved backend (tests, and after building)."""
    global _ACTIVE, _RESOLVED
    _ACTIVE = None
    _RESOLVED = False


def active():
    """The selected :class:`CompiledBackend`, or ``None`` for the
    pure-Python default.  Resolution is cached per process; a broken
    explicit selection degrades (once, recorded) instead of failing."""
    global _ACTIVE, _RESOLVED
    if _RESOLVED:
        return _ACTIVE
    _RESOLVED = True
    choice = os.environ.get(BACKEND_ENV, "").strip()
    if choice in ("", "python", "off", "0"):
        return None
    root = DEFAULT_BUILD_DIR if choice == "auto" else choice
    try:
        _ACTIVE = CompiledBackend(root)
    except BackendUnavailable as err:
        if choice != "auto":
            from repro.telemetry.core import record_degradation
            record_degradation({"name": "block_backend_unavailable",
                                "root": root, "error": str(err)})
        _ACTIVE = None
    return _ACTIVE


def record_units(store):
    """Route every subsequently compiled unit's source into ``store``
    (``{key: (source, filename)}``); pass ``None`` to stop.  Used by
    ``tools/build_backend.py`` to capture the unit set while running a
    calibration workload."""
    global _RECORDER
    _RECORDER = store


def load_unit(source, filename, namespace):
    """Turn one generated unit into its callable.

    The single funnel for both engines (every block and trace goes
    through :meth:`repro.sim.blocks._Emitter.build`): serve from the
    active compiled backend when it has the unit, otherwise
    ``compile``+``exec`` the source — bit-identical behaviour either
    way.
    """
    backend = active()
    if backend is not None:
        fn = backend.lookup(source, namespace)
        if fn is not None:
            return fn
    if _RECORDER is not None:
        _RECORDER[source_key(source)] = (source, filename)
    code = compile(source, filename, "exec")
    exec(code, namespace)
    return namespace["_block"]


def describe():
    """One status line for CLIs and reports."""
    backend = active()
    if backend is None:
        choice = os.environ.get(BACKEND_ENV, "").strip()
        return "block backend: pure python%s" % (
            " (%r unavailable)" % choice
            if choice not in ("", "python", "off", "0", "auto") else "")
    return "block backend: %s at %s (%d units, %d hits, %d misses)" % (
        backend.kind, backend.root, len(backend.units), backend.hits,
        backend.misses)
