"""Functional simulator: architectural state and instruction semantics.

:class:`~repro.sim.cpu.Cpu` executes assembled programs over a
:class:`~repro.sim.memory.Memory`; the Typed Architecture state (unified
tagged register file, Type Rule Table, tag extract/insert codec, special
registers) lives here.  Timing is layered on by :mod:`repro.uarch`.
"""

from repro.sim.cpu import Cpu
from repro.sim.errors import (
    ExecutionLimitExceeded,
    HostCallError,
    IllegalInstruction,
    SimulationError,
)
from repro.sim.hostcall import HostInterface
from repro.sim.memory import Memory
from repro.sim.regfile import FpRegisterFile, UnifiedRegisterFile
from repro.sim.tagio import TagCodec
from repro.sim.trt import TypeRuleTable, pack_rule, unpack_rule

__all__ = [
    "Cpu",
    "ExecutionLimitExceeded",
    "FpRegisterFile",
    "HostCallError",
    "HostInterface",
    "IllegalInstruction",
    "Memory",
    "SimulationError",
    "TagCodec",
    "TypeRuleTable",
    "UnifiedRegisterFile",
    "pack_rule",
    "unpack_rule",
]
