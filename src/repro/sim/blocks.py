"""Basic-block superinstruction engine for the simulator hot loop.

Every guest instruction normally costs two Python-level dispatches: the
handler lookup in :meth:`repro.sim.cpu.Cpu.step` and the per-instruction
kind/cache/stall accounting in :meth:`repro.uarch.pipeline.Machine.run`.
This module amortises both the way the paper amortises per-operation
type-check overhead in interpreters: straight-line work is fused so the
dispatch is paid per *basic block*, not per instruction.

A :class:`BlockTable` discovers blocks lazily, dynamic-binary-translation
style: whenever control reaches an instruction index with no compiled
block, the block starting there is compiled on the spot (so indirect-jump
targets — the interpreter's bytecode dispatch — need no static leader
analysis).  A block extends through conditional branches (guarded on the
taken direction) and through the may-redirect typed instructions
(``xadd``/``xsub``/``xmul``/``tchk``/``chklb``/``chklw``/``thdl``,
guarded on the redirect), and ends at ``jal``/``jalr``/``ecall``/
``ebreak`` or after :data:`MAX_BLOCK_LEN` instructions.

Each block is compiled to one generated Python function that

* calls the same semantic handlers as ``Cpu.step`` but with the
  per-step side-channel resets hoisted to the few instructions that
  read them (branches reset ``branch_taken``, typed ops reset
  ``redirect``, ``tld``/``tsd`` reset ``mem_addr2``),
* probes the I-cache once per fetched line instead of once per
  instruction (re-fetches of the MRU line are guaranteed hits, so the
  miss count, LRU state and DRAM interleaving are exactly preserved;
  the access counter is bulk-credited at the block exits),
* resolves load-use stalls statically: inside a block both sides of
  every producer/consumer pair are known at compile time, so only the
  stall against the *previous* block's last load needs a runtime check,
* folds base cycles, execution-unit latencies and ``instret`` into
  per-exit constants.

Guard failures (taken branch, type-misprediction redirect, overflow
trap, checked-load miss, ``thdl`` deoptimisation) simply return to the
dispatch loop, which resumes — per block or, near the instruction
budget, per single instruction — at the redirected PC.  Counters and
cycles are bit-identical with the per-instruction loop; the
differential suite in ``tests/test_blocks.py`` enforces this across
every benchmark cell.

Compiled tables are cached per ``(program, machine-config)`` — the
assembled interpreters are themselves cached per engine configuration,
so one sweep compiles each interpreter's hot blocks exactly once.
"""

import weakref

from repro.sim.cpu import _DISPATCH, to_signed, to_unsigned
from repro.sim.errors import IllegalInstruction
from repro.uarch.pipeline import (
    K_BRANCH,
    K_CHECK,
    K_DIV,
    K_ECALL,
    K_FP_ALU,
    K_FP_DIV,
    K_FP_SQRT,
    K_JAL,
    K_JALR,
    K_LOAD,
    K_MUL,
    K_STORE,
    K_TAGGED_ALU,
    _kind_of,
)

#: Block growth stops after this many instructions even without a
#: terminator; longer blocks buy little and inflate the near-budget
#: single-step window.
MAX_BLOCK_LEN = 64

#: Instructions that always end a block: indirect control flow lands at
#: a fresh dispatch anyway, ``ecall`` may touch arbitrary host state and
#: ``ebreak`` halts the machine.
_TERMINATORS = frozenset(["jal", "jalr", "ecall", "ebreak"])

_EXTRA_LATENCY = {K_MUL: "mul", K_DIV: "div", K_FP_ALU: "fp_alu",
                  K_FP_DIV: "fp_div", K_FP_SQRT: "fp_sqrt"}


class BlockTable:
    """Lazily compiled superinstruction blocks for one program/config.

    ``blocks[index]`` holds ``(fn, count)`` — the compiled block entered
    at instruction ``index`` and the instruction count of its full
    (unbailed) execution — or ``None`` before first use.  ``fn`` takes
    only per-run state (cpu, stall carry, cache/DRAM/front-end/counter
    objects), so one table serves every run of the same program under
    the same machine configuration.
    """

    def __init__(self, program, config):
        # Deliberately no reference to ``program`` itself: the table
        # lives in a WeakKeyDictionary keyed by the program.
        self.instructions = program.instructions
        self.base = program.base
        self.config = config
        self.line_shift = config.icache.line_bytes.bit_length() - 1
        try:
            self.handlers = [_DISPATCH[i.mnemonic]
                             for i in program.instructions]
        except KeyError as err:
            raise IllegalInstruction("no semantics for %s" % err) from None
        self.kinds = [_kind_of(i.mnemonic) for i in program.instructions]
        self.blocks = [None] * len(program.instructions)
        self._singles = {}
        self.compiled = 0
        self.compile_failures = 0

    def block_at(self, index):
        """The block entered at ``index``, compiling it on first use.

        A compilation failure is a *degradation*, not a crash: the
        entry PC permanently falls back to a generic per-instruction
        step with identical timing accounting, and the failure is
        recorded on the telemetry degradation ledger.
        """
        entry = self.blocks[index]
        if entry is None:
            try:
                entry = _compile_block(self, index, MAX_BLOCK_LEN)
                self.compiled += 1
            except Exception as err:  # noqa: BLE001 — degrade, don't die
                entry = self._degrade(index, err)
            self.blocks[index] = entry
        return entry

    def single_at(self, index):
        """A one-instruction block (used near the instruction budget so
        the ``ExecutionLimitExceeded`` point stays exact)."""
        entry = self._singles.get(index)
        if entry is None:
            try:
                entry = _compile_block(self, index, 1)
            except Exception as err:  # noqa: BLE001 — degrade, don't die
                entry = self._degrade(index, err)
            self._singles[index] = entry
        return entry

    def _degrade(self, index, err):
        """Record a compile failure and build the interpreted-step
        fallback entry for ``index``."""
        from repro.telemetry.core import record_degradation

        self.compile_failures += 1
        record_degradation({
            "name": "block_compile_failed",
            "pc": self.base + 4 * index,
            "mnemonic": self.instructions[index].mnemonic,
            "error": "%s: %s" % (type(err).__name__, err),
        })
        return _fallback_block(self, index), 1


_M = (1 << 64) - 1
_S = 1 << 63
_UNTYPED = 0xFF  # repro.isa.extension.TYPE_UNTYPED

#: Biased compare: ``to_signed(a) < to_signed(b)`` iff
#: ``(a ^ _S) < (b ^ _S)`` on the unsigned representations.
_BRANCH_COND = {
    "beq": "V[%(a)d] == V[%(b)d]",
    "bne": "V[%(a)d] != V[%(b)d]",
    "blt": "(V[%(a)d] ^ %(S)d) < (V[%(b)d] ^ %(S)d)",
    "bge": "(V[%(a)d] ^ %(S)d) >= (V[%(b)d] ^ %(S)d)",
    "bltu": "V[%(a)d] < V[%(b)d]",
    "bgeu": "V[%(a)d] >= V[%(b)d]",
}

_LOAD_ARGS = {"lb": (1, True), "lh": (2, True), "lw": (4, True),
              "ld": (8, False), "lbu": (1, False), "lhu": (2, False),
              "lwu": (4, False)}
_STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def _word_of(var):
    """Source for ``_word(var)``: truncate to 32 bits, sign-extend."""
    return "((%s & 2147483647) - (%s & 2147483648)) & %d" % (var, var, _M)


def _alu_inline(i):
    """``(stmts, expr)`` computing an inlined ALU result into registers
    exactly as the cpu.py handler would, or ``None`` if not inlined.

    The expressions mirror the ``_alu_imm``/``_alu_reg`` lambda bodies in
    :mod:`repro.sim.cpu` (including their final ``& MASK64``); constants
    involving the immediate are folded at compile time.
    """
    mn = i.mnemonic
    a, b, imm = i.rs1, i.rs2, i.imm
    M, S = _M, _S
    if mn == "addi":
        return [], "(V[%d] + %d) & %d" % (a, imm, M)
    if mn == "andi":
        return [], "V[%d] & %d" % (a, imm & M)
    if mn == "ori":
        return [], "V[%d] | %d" % (a, imm & M)
    if mn == "xori":
        return [], "V[%d] ^ %d" % (a, imm & M)
    if mn == "slli":
        return [], "(V[%d] << %d) & %d" % (a, imm & 0x3F, M)
    if mn == "srli":
        return [], "V[%d] >> %d" % (a, imm & 0x3F)
    if mn == "srai":
        return (["w = V[%d]" % a],
                "((w - ((w & %d) << 1)) >> %d) & %d" % (S, imm & 0x3F, M))
    if mn == "slti":
        return [], "1 if (V[%d] ^ %d) < %d else 0" % (a, S, (imm & M) ^ S)
    if mn == "sltiu":
        return [], "1 if V[%d] < %d else 0" % (a, imm & M)
    if mn == "addiw":
        return ["w = V[%d] + %d" % (a, imm)], _word_of("w")
    if mn == "add":
        return [], "(V[%d] + V[%d]) & %d" % (a, b, M)
    if mn == "sub":
        return [], "(V[%d] - V[%d]) & %d" % (a, b, M)
    if mn == "and":
        return [], "V[%d] & V[%d]" % (a, b)
    if mn == "or":
        return [], "V[%d] | V[%d]" % (a, b)
    if mn == "xor":
        return [], "V[%d] ^ V[%d]" % (a, b)
    if mn == "sll":
        return [], "(V[%d] << (V[%d] & 63)) & %d" % (a, b, M)
    if mn == "srl":
        return [], "V[%d] >> (V[%d] & 63)" % (a, b)
    if mn == "sra":
        return (["w = V[%d]" % a],
                "((w - ((w & %d) << 1)) >> (V[%d] & 63)) & %d" % (S, b, M))
    if mn == "slt":
        return [], "1 if (V[%d] ^ %d) < (V[%d] ^ %d) else 0" % (a, S, b, S)
    if mn == "sltu":
        return [], "1 if V[%d] < V[%d] else 0" % (a, b)
    if mn == "mul":
        return [], "(V[%d] * V[%d]) & %d" % (a, b, M)
    if mn == "addw":
        return ["w = V[%d] + V[%d]" % (a, b)], _word_of("w")
    if mn == "subw":
        return ["w = V[%d] - V[%d]" % (a, b)], _word_of("w")
    if mn == "mulw":
        return ["w = V[%d] * V[%d]" % (a, b)], _word_of("w")
    if mn == "lui":
        value = to_unsigned(to_signed(imm << 12, 32))
        return [], "%d" % value
    return None


def _compile_block(table, start, max_len):
    """Generate, ``exec`` and return ``(fn, count)`` for the block
    entered at instruction index ``start``.

    The generated function mirrors the per-instruction timing loop of
    :meth:`Machine._run_interpreted` statement for statement; every
    stateful call (front-end training, D-cache probes, DRAM row-buffer
    accesses) is emitted in the original per-instruction order so the
    counters stay bit-identical.
    """
    instrs = table.instructions
    kinds = table.kinds
    handlers = table.handlers
    base = table.base
    lat = table.config.latency
    redirect_penalty = table.config.branch.miss_penalty
    lus = lat.load_use_stall
    line_shift = table.line_shift

    stop = min(len(instrs), start + max_len)
    for j in range(start, stop):
        if instrs[j].mnemonic in _TERMINATORS:
            stop = j + 1
            break
    count = stop - start

    sig = ["cpu", "prev", "ic", "dc", "dr", "fe", "ct", "icc"]
    body = []
    uses = set()  # which preamble bindings the block needs

    # Statically accumulated state, snapshotted at every exit point.
    pend = 0      # cycles known at compile time (base + units + stalls)
    probed = 0    # I-cache probes emitted so far
    stalls = 0    # load-use stalls known at compile time
    prev_out = -1  # load destination carried across one instruction
    # ``cpu.pc`` is materialised lazily: inlined instructions skip the
    # per-instruction update, so it must be restored from the static PC
    # before any handler call or exit that relies on it.
    pc_stale = False

    def emit_exit(k, prev_value, indent, exit_pc=None):
        executed = k + 1
        if exit_pc is not None:
            body.append("%scpu.pc = %d" % (indent, exit_pc))
        body.append("%scpu.instret += %d" % (indent, executed))
        extra = executed - probed
        if extra:
            body.append("%sicc.accesses += %d" % (indent, extra))
        if stalls:
            body.append("%sct.load_use_stalls += %d" % (indent, stalls))
        body.append("%sreturn c + %d, %d" % (indent, pend, prev_value))

    for k in range(count):
        i = instrs[start + k]
        kind = kinds[start + k]
        pc = base + 4 * (start + k)
        mn = i.mnemonic
        pend += 1  # base cycle (single-issue in-order)

        # Load-use interlock: inside the block both sides are static;
        # only the first instruction races the previous block's load.
        if k == 0:
            regs = sorted({r for r in (i.rs1, i.rs2) if r})
            if regs:
                cond = " or ".join("prev == %d" % r for r in regs)
                body.append("    if %s:" % cond)
                body.append("        c += %d" % lus)
                body.append("        ct.load_use_stalls += 1")
        elif prev_out > 0 and prev_out in (i.rs1, i.rs2):
            pend += lus
            stalls += 1

        # One real I-cache probe per fetched line; later instructions on
        # the line are guaranteed MRU hits and are credited at the exits.
        if k == 0 or (pc >> line_shift) != ((pc - 4) >> line_shift):
            body.append("    if not ic(%d): c += dr(%d)" % (pc, pc))
            probed += 1

        prev_next = -1
        alu = None
        if mn in _BRANCH_COND:
            # Inline branch: the front end is trained with the same
            # (pc, taken, next-pc) triple, just with constants folded
            # per direction.
            uses.add("regs")
            target = (pc + i.imm) & _M
            cond = _BRANCH_COND[mn] % {"a": i.rs1, "b": i.rs2, "S": _S}
            body.append("    if %s:" % cond)
            body.append("        c += fe.conditional_branch(%d, True, %d)"
                        % (pc, target))
            body.append("        cpu.pc = %d" % target)
            emit_exit(k, -1, "        ")
            body.append("    c += fe.conditional_branch(%d, False, %d)"
                        % (pc, pc + 4))
            pc_stale = True
        elif mn == "jal":
            if i.rd:
                uses.add("regs")
                body.append("    V[%d] = %d" % (i.rd, pc + 4))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            target = (pc + i.imm) & _M
            body.append("    cpu.pc = %d" % target)
            body.append("    c += fe.direct_jump(%d, %d, %s, %d)"
                        % (pc, target, i.rd == 1, pc + 4))
            emit_exit(k, -1, "    ")
        elif mn == "jalr":
            uses.add("regs")
            # Target read before the link write (rd may equal rs1).
            body.append("    t = (V[%d] + %d) & %d"
                        % (i.rs1, i.imm, _M - 1))
            if i.rd:
                body.append("    V[%d] = %d" % (i.rd, pc + 4))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            body.append("    cpu.pc = t")
            body.append("    c += fe.indirect_jump(%d, t, %s, %s, %d)"
                        % (pc, i.rd == 0 and i.rs1 == 1, i.rd == 1,
                           pc + 4))
            emit_exit(k, -1, "    ")
        elif mn in _LOAD_ARGS:
            uses.add("regs")
            uses.add("mem")
            width, signed = _LOAD_ARGS[mn]
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            if signed:
                body.append("    x = ML(a, %d, True) & %d" % (width, _M))
            else:
                body.append("    x = ML(a, %d)" % width)
            body.append("    if not dc(a): c += dr(a)")
            if i.rd:
                body.append("    V[%d] = x" % i.rd)
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            prev_next = i.rd or -1
            pc_stale = True
        elif mn in _STORE_WIDTH:
            uses.add("regs")
            uses.add("mem")
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            body.append("    MS(a, %d, V[%d])"
                        % (_STORE_WIDTH[mn], i.rs2))
            body.append("    if not dc(a): c += dr(a)")
            pc_stale = True
        elif mn == "auipc":
            if i.rd:
                uses.add("regs")
                value = (pc + to_signed(i.imm << 12, 32)) & _M
                body.append("    V[%d] = %d" % (i.rd, value))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            pc_stale = True
        elif (alu := _alu_inline(i)) is not None:
            stmts, expr = alu
            if i.rd:
                uses.add("regs")
                for stmt in stmts:
                    body.append("    " + stmt)
                body.append("    V[%d] = %s" % (i.rd, expr))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            # rd == x0: the handler's computation is pure, so a dead
            # write is simply elided.
            if kind == K_MUL:
                pend += lat.mul
            pc_stale = True
        else:
            # Handler-called fallback: the handler reads/writes cpu.pc,
            # so materialise it first if inlined code left it stale.
            if pc_stale:
                body.append("    cpu.pc = %d" % pc)
                pc_stale = False
            sig.append("h%d=_h[%d]" % (k, k))
            sig.append("i%d=_i[%d]" % (k, k))
            call = "h%d(cpu, i%d)" % (k, k)
            if kind == K_BRANCH:
                body.append("    cpu.branch_taken = False")
                body.append("    " + call)
                body.append("    c += fe.conditional_branch(%d, "
                            "cpu.branch_taken, cpu.pc)" % pc)
                body.append("    if cpu.branch_taken:")
                emit_exit(k, -1, "        ")
            elif kind == K_JAL:
                body.append("    " + call)
                body.append("    c += fe.direct_jump(%d, cpu.pc, %s, %d)"
                            % (pc, i.rd == 1, pc + 4))
                emit_exit(k, -1, "    ")
            elif kind == K_JALR:
                body.append("    " + call)
                body.append("    c += fe.indirect_jump(%d, cpu.pc, "
                            "%s, %s, %d)"
                            % (pc, i.rd == 0 and i.rs1 == 1, i.rd == 1,
                               pc + 4))
                emit_exit(k, -1, "    ")
            elif kind == K_LOAD:
                if mn == "tld":
                    body.append("    cpu.mem_addr2 = None")
                body.append("    " + call)
                body.append("    if not dc(cpu.mem_addr): "
                            "c += dr(cpu.mem_addr)")
                if mn == "tld":
                    body.append("    m = cpu.mem_addr2")
                    body.append("    if m is not None and not dc(m): "
                                "c += dr(m)")
                prev_next = i.rd or -1
                if mn == "chklw":
                    # Checked load classified as a plain load by the
                    # timing model: no redirect penalty, but the PC may
                    # have been redirected to R_hdl — guard the
                    # fall-through.
                    body.append("    if cpu.pc != %d:" % (pc + 4))
                    emit_exit(k, prev_next, "        ")
            elif kind == K_STORE:
                if mn == "tsd":
                    body.append("    cpu.mem_addr2 = None")
                body.append("    " + call)
                body.append("    if not dc(cpu.mem_addr): "
                            "c += dr(cpu.mem_addr)")
                if mn == "tsd":
                    body.append("    m = cpu.mem_addr2")
                    body.append("    if m is not None and not dc(m): "
                                "c += dr(m)")
            elif kind == K_TAGGED_ALU:
                body.append("    cpu.redirect = False")
                body.append("    " + call)
                body.append("    if cpu.redirect:")
                body.append("        c += %d" % redirect_penalty)
                emit_exit(k, -1, "        ")
                if mn == "xmul":
                    pend += lat.mul  # charged on the fast path
                elif i.rd:
                    body.append("    if cpu.regs.fbit[%d]: c += %d"
                                % (i.rd, lat.fp_alu))
            elif kind == K_CHECK:
                body.append("    cpu.redirect = False")
                body.append("    " + call)
                if mn != "tchk":
                    body.append("    if not dc(cpu.mem_addr): "
                                "c += dr(cpu.mem_addr)")
                body.append("    if cpu.redirect:")
                body.append("        c += %d" % redirect_penalty)
                emit_exit(k, -1, "        ")
                if mn != "tchk":
                    prev_next = i.rd or -1
            elif kind == K_ECALL:
                body.append("    " + call)
                body.append("    m = cpu.pending_host_cost")
                body.append("    cpu.pending_host_cost = 0")
                body.append("    ct.host_instructions += m")
                body.append("    ct.host_calls += 1")
                body.append("    c += int(m * %r)" % lat.host_cpi)
                emit_exit(k, -1, "    ")
            else:
                body.append("    " + call)
                if mn == "ebreak":
                    emit_exit(k, -1, "    ")
                elif mn == "thdl":
                    # With the Section-5 path selector armed, thdl may
                    # redirect straight to the slow path.
                    body.append("    if cpu.pc != %d:" % (pc + 4))
                    emit_exit(k, -1, "        ")
                extra = _EXTRA_LATENCY.get(kind)
                if extra is not None:
                    pend += getattr(lat, extra)
        prev_out = prev_next

    if instrs[stop - 1].mnemonic not in _TERMINATORS:
        emit_exit(count - 1, prev_out, "    ",
                  exit_pc=base + 4 * stop if pc_stale else None)

    lines = ["def _block(%s):" % ", ".join(sig), "    c = 0"]
    if "regs" in uses:
        lines.append("    r = cpu.regs")
        lines.append("    V = r.value; T = r.type; F = r.fbit")
    if "mem" in uses:
        lines.append("    m_ = cpu.mem")
        lines.append("    ML = m_.load; MS = m_.store")
    lines.extend(body)

    namespace = {
        "_h": tuple(handlers[start:stop]),
        "_i": tuple(instrs[start:stop]),
        "int": int,
    }
    code = compile("\n".join(lines), "<block@0x%x>" % (base + 4 * start),
                   "exec")
    exec(code, namespace)
    return namespace["_block"], count


def _fallback_block(table, index):
    """A compile-free single-instruction entry for ``index``.

    Used when :func:`_compile_block` fails: a plain Python closure that
    executes one instruction through ``Cpu.step`` and charges cycles
    with the exact statement order of
    :meth:`repro.uarch.pipeline.Machine._run_interpreted`, so counters
    stay bit-identical with both engines even for degraded entries.
    It never ``exec``-compiles anything, so it cannot itself fail.
    """
    instr = table.instructions[index]
    kind = table.kinds[index]
    pc = table.base + 4 * index
    lat = table.config.latency
    lus = lat.load_use_stall
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    mnemonic = instr.mnemonic

    def step(cpu, prev, ic, dc, dr, fe, ct, icc):
        cpu.step()
        c = 1
        if prev >= 0:
            if rs1 == prev or rs2 == prev:
                c += lus
                ct.load_use_stalls += 1
        out_prev = -1
        if not ic(pc):
            c += dr(pc)
        if kind:
            if kind == K_BRANCH:
                c += fe.conditional_branch(pc, cpu.branch_taken, cpu.pc)
            elif kind == K_JAL:
                c += fe.direct_jump(pc, cpu.pc, rd == 1, pc + 4)
            elif kind == K_JALR:
                c += fe.indirect_jump(pc, cpu.pc, rd == 0 and rs1 == 1,
                                      rd == 1, pc + 4)
            elif kind == K_LOAD:
                if not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.mem_addr2 is not None and not dc(cpu.mem_addr2):
                    c += dr(cpu.mem_addr2)
                if rd:
                    out_prev = rd
            elif kind == K_STORE:
                if not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.mem_addr2 is not None and not dc(cpu.mem_addr2):
                    c += dr(cpu.mem_addr2)
            elif kind == K_TAGGED_ALU:
                if cpu.redirect:
                    c += fe.pipeline_redirect()
                elif cpu.regs.fbit[rd]:
                    c += lat.fp_alu if mnemonic != "xmul" else lat.mul
                elif mnemonic == "xmul":
                    c += lat.mul
            elif kind == K_CHECK:
                is_load = mnemonic != "tchk"
                if is_load and not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.redirect:
                    c += fe.pipeline_redirect()
                elif is_load and rd:
                    out_prev = rd
            elif kind == K_ECALL:
                cost = cpu.pending_host_cost
                cpu.pending_host_cost = 0
                ct.host_instructions += cost
                ct.host_calls += 1
                c += int(cost * lat.host_cpi)
            elif kind == K_MUL:
                c += lat.mul
            elif kind == K_DIV:
                c += lat.div
            elif kind == K_FP_ALU:
                c += lat.fp_alu
            elif kind == K_FP_DIV:
                c += lat.fp_div
            elif kind == K_FP_SQRT:
                c += lat.fp_sqrt
        return c, out_prev

    return step


# One table per (program, machine config).  Keyed weakly so throwaway
# test programs do not pin their tables; the values hold no reference
# back to the program object.
_TABLES = weakref.WeakKeyDictionary()


def block_table(program, config):
    """The (shared, lazily filled) :class:`BlockTable` for a program
    under a machine configuration."""
    per_program = _TABLES.get(program)
    if per_program is None:
        per_program = {}
        _TABLES[program] = per_program
    table = per_program.get(config)
    if table is None:
        table = BlockTable(program, config)
        per_program[config] = table
    return table
