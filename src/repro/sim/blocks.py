"""Basic-block superinstruction engine for the simulator hot loop.

Every guest instruction normally costs two Python-level dispatches: the
handler lookup in :meth:`repro.sim.cpu.Cpu.step` and the per-instruction
kind/cache/stall accounting in :meth:`repro.uarch.pipeline.Machine.run`.
This module amortises both the way the paper amortises per-operation
type-check overhead in interpreters: straight-line work is fused so the
dispatch is paid per *basic block*, not per instruction.

A :class:`BlockTable` discovers blocks lazily, dynamic-binary-translation
style: whenever control reaches an instruction index with no compiled
block, the block starting there is compiled on the spot (so indirect-jump
targets — the interpreter's bytecode dispatch — need no static leader
analysis).  A block extends through conditional branches (guarded on the
taken direction) and through the may-redirect typed instructions
(``xadd``/``xsub``/``xmul``/``tchk``/``chklb``/``chklw``/``thdl``,
guarded on the redirect), and ends at ``jal``/``jalr``/``ecall``/
``ebreak`` or after :data:`MAX_BLOCK_LEN` instructions.

Each block is compiled to one generated Python function that

* calls the same semantic handlers as ``Cpu.step`` but with the
  per-step side-channel resets hoisted to the few instructions that
  read them (branches reset ``branch_taken``, typed ops reset
  ``redirect``, ``tld``/``tsd`` reset ``mem_addr2``),
* probes the I-cache once per fetched line instead of once per
  instruction (re-fetches of the MRU line are guaranteed hits, so the
  miss count, LRU state and DRAM interleaving are exactly preserved;
  the access counter is bulk-credited at the block exits),
* resolves load-use stalls statically: inside a block both sides of
  every producer/consumer pair are known at compile time, so only the
  stall against the *previous* block's last load needs a runtime check,
* folds base cycles, execution-unit latencies and ``instret`` into
  per-exit constants.

Guard failures (taken branch, type-misprediction redirect, overflow
trap, checked-load miss, ``thdl`` deoptimisation) simply return to the
dispatch loop, which resumes — per block or, near the instruction
budget, per single instruction — at the redirected PC.  Counters and
cycles are bit-identical with the per-instruction loop; the
differential suite in ``tests/test_blocks.py`` enforces this across
every benchmark cell.

The per-instruction code generator itself lives in :class:`_Emitter`,
shared with the superblock *trace* engine (:mod:`repro.sim.traces`)
which chains hot blocks across taken branches into longer compilation
units with guarded side exits.

Compiled tables are cached per ``(program, machine-config)`` — the
assembled interpreters are themselves cached per engine configuration,
so one sweep compiles each interpreter's hot blocks exactly once.
"""

import weakref

from repro.engines.ir import (
    BRANCH_COND as _BRANCH_COND,
    LOAD_ARGS as _LOAD_ARGS,
    MASK64 as _M,
    MAX_BLOCK_LEN,
    STORE_WIDTH as _STORE_WIDTH,
    TERMINATORS as _TERMINATORS,
    block_extent,
)
from repro.isa.extension import TAG_DWORD_DISPLACEMENT
from repro.sim.cpu import (
    _DISPATCH,
    _PACK_F64,
    _PACK_U64,
    to_signed,
    to_unsigned,
)
from repro.sim.errors import IllegalInstruction
from repro.sim.trt import TRT_OPCODES
from repro.uarch.pipeline import (
    K_BRANCH,
    K_CHECK,
    K_DIV,
    K_ECALL,
    K_FP_ALU,
    K_FP_DIV,
    K_FP_SQRT,
    K_JAL,
    K_JALR,
    K_LOAD,
    K_MUL,
    K_STORE,
    K_TAGGED_ALU,
    _kind_of,
)

_EXTRA_LATENCY = {K_MUL: "mul", K_DIV: "div", K_FP_ALU: "fp_alu",
                  K_FP_DIV: "fp_div", K_FP_SQRT: "fp_sqrt"}


class BlockTable:
    """Lazily compiled superinstruction blocks for one program/config.

    ``blocks[index]`` holds ``(fn, count)`` — the compiled block entered
    at instruction ``index`` and the instruction count of its full
    (unbailed) execution — or ``None`` before first use.  ``fn`` takes
    only per-run state (cpu, stall carry, cache/DRAM/front-end/counter
    objects), so one table serves every run of the same program under
    the same machine configuration.
    """

    def __init__(self, program, config):
        # Deliberately no reference to ``program`` itself: the table
        # lives in a WeakKeyDictionary keyed by the program.
        self.instructions = program.instructions
        self.base = program.base
        self.config = config
        self.line_shift = config.icache.line_bytes.bit_length() - 1
        try:
            self.handlers = [_DISPATCH[i.mnemonic]
                             for i in program.instructions]
        except KeyError as err:
            raise IllegalInstruction("no semantics for %s" % err) from None
        self.kinds = [_kind_of(i.mnemonic) for i in program.instructions]
        self.blocks = [None] * len(program.instructions)
        self._singles = {}
        self.compiled = 0
        self.compile_failures = 0
        # Full handler/instruction tuples shared by every generated
        # function's default-argument bindings (blocks and traces bind
        # by absolute instruction index).
        self._h = tuple(self.handlers)
        self._i = tuple(program.instructions)

    def block_at(self, index):
        """The block entered at ``index``, compiling it on first use.

        A compilation failure is a *degradation*, not a crash: the
        entry PC permanently falls back to a generic per-instruction
        step with identical timing accounting, and the failure is
        recorded on the telemetry degradation ledger.
        """
        entry = self.blocks[index]
        if entry is None:
            try:
                entry = _compile_block(self, index, MAX_BLOCK_LEN)
                self.compiled += 1
            except Exception as err:  # noqa: BLE001 — degrade, don't die
                entry = self._degrade(index, err)
            self.blocks[index] = entry
        return entry

    def single_at(self, index):
        """A one-instruction block (used near the instruction budget so
        the ``ExecutionLimitExceeded`` point stays exact)."""
        entry = self._singles.get(index)
        if entry is None:
            try:
                entry = _compile_block(self, index, 1)
            except Exception as err:  # noqa: BLE001 — degrade, don't die
                entry = self._degrade(index, err)
            self._singles[index] = entry
        return entry

    def _degrade(self, index, err):
        """Record a compile failure and build the interpreted-step
        fallback entry for ``index``."""
        from repro.telemetry.core import record_degradation

        self.compile_failures += 1
        record_degradation({
            "name": "block_compile_failed",
            "pc": self.base + 4 * index,
            "mnemonic": self.instructions[index].mnemonic,
            "error": "%s: %s" % (type(err).__name__, err),
        })
        return _fallback_block(self, index), 1


# Host-ISA classification (branch conditions, load/store shapes, block
# terminators) is canonical in repro.engines.ir and imported above.
_SIGN = 1 << 63
_S = 1 << 63
_UNTYPED = 0xFF  # repro.isa.extension.TYPE_UNTYPED


def _word_of(var):
    """Source for ``_word(var)``: truncate to 32 bits, sign-extend."""
    return "((%s & 2147483647) - (%s & 2147483648)) & %d" % (var, var, _M)


def _alu_inline(i):
    """``(stmts, expr)`` computing an inlined ALU result into registers
    exactly as the cpu.py handler would, or ``None`` if not inlined.

    The expressions mirror the ``_alu_imm``/``_alu_reg`` lambda bodies in
    :mod:`repro.sim.cpu` (including their final ``& MASK64``); constants
    involving the immediate are folded at compile time.
    """
    mn = i.mnemonic
    a, b, imm = i.rs1, i.rs2, i.imm
    M, S = _M, _S
    if mn == "addi":
        return [], "(V[%d] + %d) & %d" % (a, imm, M)
    if mn == "andi":
        return [], "V[%d] & %d" % (a, imm & M)
    if mn == "ori":
        return [], "V[%d] | %d" % (a, imm & M)
    if mn == "xori":
        return [], "V[%d] ^ %d" % (a, imm & M)
    if mn == "slli":
        return [], "(V[%d] << %d) & %d" % (a, imm & 0x3F, M)
    if mn == "srli":
        return [], "V[%d] >> %d" % (a, imm & 0x3F)
    if mn == "srai":
        return (["w = V[%d]" % a],
                "((w - ((w & %d) << 1)) >> %d) & %d" % (S, imm & 0x3F, M))
    if mn == "slti":
        return [], "1 if (V[%d] ^ %d) < %d else 0" % (a, S, (imm & M) ^ S)
    if mn == "sltiu":
        return [], "1 if V[%d] < %d else 0" % (a, imm & M)
    if mn == "addiw":
        return ["w = V[%d] + %d" % (a, imm)], _word_of("w")
    if mn == "add":
        return [], "(V[%d] + V[%d]) & %d" % (a, b, M)
    if mn == "sub":
        return [], "(V[%d] - V[%d]) & %d" % (a, b, M)
    if mn == "and":
        return [], "V[%d] & V[%d]" % (a, b)
    if mn == "or":
        return [], "V[%d] | V[%d]" % (a, b)
    if mn == "xor":
        return [], "V[%d] ^ V[%d]" % (a, b)
    if mn == "sll":
        return [], "(V[%d] << (V[%d] & 63)) & %d" % (a, b, M)
    if mn == "srl":
        return [], "V[%d] >> (V[%d] & 63)" % (a, b)
    if mn == "sra":
        return (["w = V[%d]" % a],
                "((w - ((w & %d) << 1)) >> (V[%d] & 63)) & %d" % (S, b, M))
    if mn == "slt":
        return [], "1 if (V[%d] ^ %d) < (V[%d] ^ %d) else 0" % (a, S, b, S)
    if mn == "sltu":
        return [], "1 if V[%d] < V[%d] else 0" % (a, b)
    if mn == "mul":
        return [], "(V[%d] * V[%d]) & %d" % (a, b, M)
    if mn == "addw":
        return ["w = V[%d] + V[%d]" % (a, b)], _word_of("w")
    if mn == "subw":
        return ["w = V[%d] - V[%d]" % (a, b)], _word_of("w")
    if mn == "mulw":
        return ["w = V[%d] * V[%d]" % (a, b)], _word_of("w")
    if mn == "lui":
        value = to_unsigned(to_signed(imm << 12, 32))
        return [], "%d" % value
    return None


def _block_extent(table, start, max_len):
    """The exclusive stop index of the block entered at ``start``
    (see :func:`repro.engines.ir.block_extent`)."""
    return block_extent(table.instructions, start, max_len)


class _Emitter:
    """Per-instruction code generator shared by blocks and traces.

    ``emit(index)`` appends block-mode code for one instruction to the
    generated function body; ``emit(index, chain=...)`` instead *chains
    through* the control transfer, turning what the block engine treats
    as an exit into a guarded continuation:

    ``("taken", target_pc)``
        Conditional branch assumed taken: the guard is the branch
        condition itself; the fall-through direction side-exits with
        the same front-end training call and cycle charge the
        reference loop pays on that path.
    ``("jal", target_pc)``
        Direct jump: unconditional chain, no guard needed.
    ``("jalr", assumed_pc)``
        Indirect jump: the actual target is computed and trained as
        usual, then guarded against the assumed trace successor.

    The generated code mirrors the per-instruction timing loop of
    :meth:`Machine._run_interpreted` statement for statement; every
    stateful call (front-end training, D-cache probes, DRAM row-buffer
    accesses) is emitted in the original per-instruction order so the
    counters stay bit-identical between all engines.

    With ``fast=True`` (the trace engine) the emitter additionally
    *inlines* the stateful helpers themselves — gshare/BTB/RAS
    training, the cache MRU probe and the functional memory access —
    instead of calling them.  The inlined code manipulates the very
    same model state (counter lists, LRU order lists, the tag sets,
    the backing bytearray), with slow paths falling back to the real
    methods, so the model state and every counter remain bit-identical
    at any deopt boundary even though traces and plain blocks
    interleave freely on the same machine.  Block compilation keeps
    ``fast=False`` so the block engine's generated code — the baseline
    the trace speedup is measured against — is unchanged from PR 3.
    """

    def __init__(self, table, fast=False):
        self.table = table
        self.instrs = table.instructions
        self.kinds = table.kinds
        self.base = table.base
        self.lat = table.config.latency
        self.redirect_penalty = table.config.branch.miss_penalty
        self.lus = self.lat.load_use_stall
        self.line_shift = table.line_shift
        self.sig = ["cpu", "prev", "ic", "dc", "dr", "fe", "ct", "icc"]
        self.body = []
        self.uses = set()    # which preamble bindings the code needs
        self._bound = set()  # instruction indices already bound in sig
        # Statically accumulated state, snapshotted at every exit point.
        self.pend = 0       # cycles known at compile time
        self.probed = 0     # I-cache probes emitted so far
        self.stalls = 0     # load-use stalls known at compile time
        self.prev_out = -1  # load destination carried one instruction
        # ``cpu.pc`` is materialised lazily: inlined instructions skip
        # the per-instruction update, so it must be restored from the
        # static PC before any handler call or exit that relies on it.
        self.pc_stale = False
        # PC of the previously executed instruction (``None`` at unit
        # entry): the I-cache is probed only on a line change, because
        # re-fetches of the MRU line are guaranteed hits — including
        # across chained branches and jumps.
        self.prev_pc = None
        self.k = 0          # instructions emitted so far
        self.fast = fast
        if fast:
            branch = table.config.branch
            self.gshare_mask = branch.gshare_entries - 1
            self.history_mask = \
                (1 << (branch.gshare_entries.bit_length() - 1)) - 1
            self.btb_entries = branch.btb_entries
            self.ras_entries = branch.ras_entries
            dcache = table.config.dcache
            self.d_shift = dcache.line_bytes.bit_length() - 1
            self.d_mask = dcache.sets - 1
            self.i_mask = table.config.icache.sets - 1
            # Statically known per exit point, like ``instret``:
            # conditional branches + indirect jumps executed so far,
            # and inlined D-cache probes to bulk-credit.
            self.fe_branches = 0
            self.dprobes = 0
            # Global history lives in a local (``gh``) inside the
            # generated function and is flushed back at every exit.
            self.uses.add("gsh")

    def emit_exit(self, executed, prev_value, indent, exit_pc=None):
        body = self.body
        if exit_pc is not None:
            body.append("%scpu.pc = %d" % (indent, exit_pc))
        body.append("%scpu.instret += %d" % (indent, executed))
        extra = executed - self.probed
        if extra:
            body.append("%sicc.accesses += %d" % (indent, extra))
        if self.stalls:
            body.append("%sct.load_use_stalls += %d"
                        % (indent, self.stalls))
        if self.fast:
            if self.fe_branches:
                body.append("%sfe.branches += %d"
                            % (indent, self.fe_branches))
            if self.dprobes:
                body.append("%sdcc.accesses += %d" % (indent, self.dprobes))
            body.append("%sg_.history = gh" % indent)
        body.append("%sreturn c + %d, %d"
                    % (indent, self.pend, prev_value))

    def _call(self, index):
        """Bind handler/instruction ``index`` as default arguments (once
        per index) and return the call expression."""
        if index not in self._bound:
            self._bound.add(index)
            self.sig.append("h%d=_h[%d]" % (index, index))
            self.sig.append("i%d=_i[%d]" % (index, index))
        return "h%d(cpu, i%d)" % (index, index)

    # -- fast-mode (trace) inline expansions ----------------------------

    def _cond_fused(self, pc, taken, target, A):
        """Inline ``fe.conditional_branch(pc, taken, ...)`` with the
        direction known at compile time.

        Replicates :meth:`FrontEnd.conditional_branch` state change for
        state change: the gshare counter nudge and history shift, the
        BTB LRU touch on a predicted-taken lookup, the BTB insertion on
        an actually-taken branch, and the mispredict accounting.  (The
        lookup's LRU touch and the update's re-insertion compose to a
        single move-to-MRU, which is what is emitted.)
        """
        body = self.body
        body.append(A + "gi = (%d ^ gh) & %d"
                    % (pc >> 2, self.gshare_mask))
        body.append(A + "n_ = gc[gi]")
        if taken:
            self.uses.add("btb")
            body.append(A + "if n_ < 3: gc[gi] = n_ + 1")
            body.append(A + "gh = ((gh << 1) | 1) & %d"
                        % self.history_mask)
            self._btb_fused(pc, "%d" % target, A)
            body.append(A + "if n_ < 2 or p_ != %d:" % target)
            body.append(A + "    fe.mispredicts += 1")
            body.append(A + "    c += %d" % self.redirect_penalty)
        else:
            body.append(A + "if n_ > 0: gc[gi] = n_ - 1")
            body.append(A + "gh = (gh << 1) & %d" % self.history_mask)
            body.append(A + "if n_ >= 2:")
            self.uses.add("btb")
            # btb.lookup(pc) alone: the entry (if any) moves to MRU by
            # dict re-insertion; the prediction is a mispredict either
            # way (predicted taken, was not).
            body.append(A + "    p_ = bt.get(%d)" % pc)
            body.append(A + "    if p_ is not None:")
            body.append(A + "        del bt[%d]" % pc)
            body.append(A + "        bt[%d] = p_" % pc)
            body.append(A + "    fe.mispredicts += 1")
            body.append(A + "    c += %d" % self.redirect_penalty)

    def _btb_fused(self, pc, target_expr, A):
        """Inline ``btb.lookup(pc)`` + ``btb.update(pc, target)``: the
        prediction lands in ``p_``, the entry moves to MRU (dict
        insertion order *is* the LRU order), and the LRU victim — the
        oldest key — is evicted exactly when the original pair would."""
        self.uses.add("btb")
        body = self.body
        body.append(A + "p_ = bt.get(%d)" % pc)
        body.append(A + "if p_ is None:")
        body.append(A + "    if len(bt) >= %d: del bt[next(iter(bt))]"
                    % self.btb_entries)
        body.append(A + "else:")
        body.append(A + "    del bt[%d]" % pc)
        body.append(A + "bt[%d] = %s" % (pc, target_expr))

    def _ras_push(self, return_address, A):
        """Inline ``ras.push(return_address)``."""
        self.uses.add("ras")
        body = self.body
        body.append(A + "rs_.append(%d)" % return_address)
        body.append(A + "if len(rs_) > %d: del rs_[0]" % self.ras_entries)

    def _dc_fused(self, addr, A):
        """Inline the D-cache MRU fast path for an access to ``addr``.

        A re-touch of a set's MRU line is a hit with no LRU movement,
        so only the tag compare runs inline; anything else falls back
        to the real :meth:`Cache.access`.  The access counter is
        bulk-credited at the exits (``self.dprobes``), so the fallback
        pre-decrements to compensate for its own count.
        """
        self.uses.add("dcf")
        self.dprobes += 1
        body = self.body
        body.append(A + "ln = %s >> %d" % (addr, self.d_shift))
        body.append(A + "e_ = ds[ln & %d]" % self.d_mask)
        body.append(A + "if not (e_ and e_[-1] == ln):")
        body.append(A + "    dcc.accesses -= 1")
        body.append(A + "    if not dc(%s): c += dr(%s)" % (addr, addr))

    def _redirect_exit(self, k, A):
        """Inline ``Cpu._type_mispredict`` plus the redirect penalty and
        the trace exit (telemetry is off on this engine by selection)."""
        body = self.body
        body.append(A + "cpu.pc = cpu.r_hdl")
        body.append(A + "cpu.redirect = True")
        body.append(A + "s_ = cpu._active_thdl_site")
        body.append(A + "if s_ is not None:")
        body.append(A + "    cpu._deopt_sites[s_][1] += 1")
        body.append(A + "    cpu._active_thdl_site = None")
        body.append(A + "c += %d" % self.redirect_penalty)
        self.emit_exit(k + 1, -1, A)

    def emit(self, index, chain=None):
        i = self.instrs[index]
        kind = self.kinds[index]
        pc = self.base + 4 * index
        mn = i.mnemonic
        body = self.body
        uses = self.uses
        lat = self.lat
        k = self.k
        self.pend += 1  # base cycle (single-issue in-order)

        # Load-use interlock: inside the unit both sides are static;
        # only the first instruction races the previous unit's load.
        if k == 0:
            regs = sorted({r for r in (i.rs1, i.rs2) if r})
            if regs:
                cond = " or ".join("prev == %d" % r for r in regs)
                body.append("    if %s:" % cond)
                body.append("        c += %d" % self.lus)
                body.append("        ct.load_use_stalls += 1")
        elif self.prev_out > 0 and self.prev_out in (i.rs1, i.rs2):
            self.pend += self.lus
            self.stalls += 1

        # One real I-cache probe per fetched line; later instructions on
        # the line are guaranteed MRU hits, credited at the exits.
        if self.prev_pc is None or \
                (pc >> self.line_shift) != (self.prev_pc >> self.line_shift):
            if self.fast:
                # The set index and tag are compile-time constants, so
                # even the MRU hit check is inlined; the slow path
                # compensates the bulk access credit.
                self.uses.add("icf")
                line = pc >> self.line_shift
                body.append("    e_ = iss[%d]" % (line & self.i_mask))
                body.append("    if not (e_ and e_[-1] == %d):" % line)
                body.append("        icc.accesses -= 1")
                body.append("        if not ic(%d): c += dr(%d)" % (pc, pc))
            else:
                body.append("    if not ic(%d): c += dr(%d)" % (pc, pc))
                self.probed += 1

        prev_next = -1
        alu = None
        if mn in _BRANCH_COND:
            # Inline branch: the front end is trained with the same
            # (pc, taken, next-pc) triple, just with constants folded
            # per direction.
            uses.add("regs")
            target = (pc + i.imm) & _M
            cond = _BRANCH_COND[mn] % {"a": i.rs1, "b": i.rs2, "S": _S}
            if self.fast:
                self.fe_branches += 1
                if chain is not None and chain[0] == "taken":
                    body.append("    if not (%s):" % cond)
                    self._cond_fused(pc, False, None, "        ")
                    self.emit_exit(k + 1, -1, "        ", exit_pc=pc + 4)
                    self._cond_fused(pc, True, target, "    ")
                else:
                    body.append("    if %s:" % cond)
                    self._cond_fused(pc, True, target, "        ")
                    body.append("        cpu.pc = %d" % target)
                    self.emit_exit(k + 1, -1, "        ")
                    self._cond_fused(pc, False, None, "    ")
            elif chain is not None and chain[0] == "taken":
                body.append("    if not (%s):" % cond)
                body.append("        c += fe.conditional_branch("
                            "%d, False, %d)" % (pc, pc + 4))
                self.emit_exit(k + 1, -1, "        ", exit_pc=pc + 4)
                body.append("    c += fe.conditional_branch(%d, True, %d)"
                            % (pc, target))
            else:
                body.append("    if %s:" % cond)
                body.append("        c += fe.conditional_branch("
                            "%d, True, %d)" % (pc, target))
                body.append("        cpu.pc = %d" % target)
                self.emit_exit(k + 1, -1, "        ")
                body.append("    c += fe.conditional_branch(%d, False, %d)"
                            % (pc, pc + 4))
            self.pc_stale = True
        elif mn == "jal":
            if i.rd:
                uses.add("regs")
                body.append("    V[%d] = %d" % (i.rd, pc + 4))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            target = (pc + i.imm) & _M
            if self.fast:
                # fe.direct_jump inline: RAS push for calls, fused BTB
                # lookup+update, a one-cycle charge on a BTB miss.
                if i.rd == 1:
                    self._ras_push(pc + 4, "    ")
                self._btb_fused(pc, "%d" % target, "    ")
                body.append("    if p_ != %d:" % target)
                body.append("        fe.btb_misses += 1")
                body.append("        c += 1")
                if chain is not None:
                    self.pc_stale = True
                else:
                    body.append("    cpu.pc = %d" % target)
                    self.emit_exit(k + 1, -1, "    ")
            elif chain is not None:
                body.append("    c += fe.direct_jump(%d, %d, %s, %d)"
                            % (pc, target, i.rd == 1, pc + 4))
                self.pc_stale = True
            else:
                body.append("    cpu.pc = %d" % target)
                body.append("    c += fe.direct_jump(%d, %d, %s, %d)"
                            % (pc, target, i.rd == 1, pc + 4))
                self.emit_exit(k + 1, -1, "    ")
        elif mn == "jalr":
            uses.add("regs")
            # Target read before the link write (rd may equal rs1).
            body.append("    t = (V[%d] + %d) & %d"
                        % (i.rs1, i.imm, _M - 1))
            if i.rd:
                body.append("    V[%d] = %d" % (i.rd, pc + 4))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            if self.fast:
                # fe.indirect_jump inline: RAS prediction for returns,
                # else fused BTB lookup+update (and a RAS push for
                # calls), then the mispredict check against the actual
                # target.
                self.fe_branches += 1
                if i.rd == 0 and i.rs1 == 1:
                    self.uses.add("ras")
                    body.append("    p_ = rs_.pop() if rs_ else None")
                else:
                    self._btb_fused(pc, "t", "    ")
                    if i.rd == 1:
                        self._ras_push(pc + 4, "    ")
                body.append("    if p_ != t:")
                body.append("        fe.mispredicts += 1")
                body.append("        c += %d" % self.redirect_penalty)
                if chain is not None:
                    body.append("    if t != %d:" % chain[1])
                    body.append("        cpu.pc = t")
                    self.emit_exit(k + 1, -1, "        ")
                    self.pc_stale = True
                else:
                    body.append("    cpu.pc = t")
                    self.emit_exit(k + 1, -1, "    ")
            elif chain is not None:
                # The front end trains on the *actual* target exactly as
                # the reference loop would; the guard only decides where
                # execution continues.
                body.append("    c += fe.indirect_jump(%d, t, %s, %s, %d)"
                            % (pc, i.rd == 0 and i.rs1 == 1, i.rd == 1,
                               pc + 4))
                body.append("    if t != %d:" % chain[1])
                body.append("        cpu.pc = t")
                self.emit_exit(k + 1, -1, "        ")
                self.pc_stale = True
            else:
                body.append("    cpu.pc = t")
                body.append("    c += fe.indirect_jump(%d, t, %s, %s, %d)"
                            % (pc, i.rd == 0 and i.rs1 == 1, i.rd == 1,
                               pc + 4))
                self.emit_exit(k + 1, -1, "    ")
        elif mn in _LOAD_ARGS:
            uses.add("regs")
            uses.add("mem")
            width, signed = _LOAD_ARGS[mn]
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            if self.fast:
                # In-bounds accesses read the backing bytearray
                # directly; the bounds check routes out-of-range
                # addresses to Memory.load for the exact MemoryError.
                uses.add("memf")
                body.append("    if a + %d > msz:" % width)
                if signed:
                    body.append("        x = ML(a, %d, True) & %d"
                                % (width, _M))
                    body.append("    else:")
                    body.append("        x = FB(D[a:a+%d], 'little', "
                                "signed=True) & %d" % (width, _M))
                else:
                    body.append("        x = ML(a, %d)" % width)
                    body.append("    else:")
                    body.append("        x = FB(D[a:a+%d], 'little')"
                                % width)
                self._dc_fused("a", "    ")
            else:
                if signed:
                    body.append("    x = ML(a, %d, True) & %d"
                                % (width, _M))
                else:
                    body.append("    x = ML(a, %d)" % width)
                body.append("    if not dc(a): c += dr(a)")
            if i.rd:
                body.append("    V[%d] = x" % i.rd)
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            prev_next = i.rd or -1
            self.pc_stale = True
        elif mn in _STORE_WIDTH:
            uses.add("regs")
            uses.add("mem")
            width = _STORE_WIDTH[mn]
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            if self.fast:
                uses.add("memf")
                body.append("    if a + %d > msz:" % width)
                body.append("        MS(a, %d, V[%d])" % (width, i.rs2))
                body.append("    else:")
                if width == 1:
                    body.append("        D[a] = V[%d] & 255" % i.rs2)
                else:
                    body.append("        D[a:a+%d] = (V[%d] & %d)"
                                ".to_bytes(%d, 'little')"
                                % (width, i.rs2,
                                   (1 << (8 * width)) - 1, width))
                self._dc_fused("a", "    ")
            else:
                body.append("    MS(a, %d, V[%d])" % (width, i.rs2))
                body.append("    if not dc(a): c += dr(a)")
            self.pc_stale = True
        elif self.fast and mn == "fld":
            # FP load: same shape as the integer loads, landing in the
            # FP bit file (no type/F-bit bookkeeping on FP registers).
            uses.add("regs")
            uses.add("mem")
            uses.add("memf")
            uses.add("fregs")
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            body.append("    if a + 8 > msz:")
            body.append("        x = ML(a, 8)")
            body.append("    else:")
            body.append("        x = FB(D[a:a+8], 'little')")
            self._dc_fused("a", "    ")
            body.append("    FV[%d] = x" % i.rd)
            prev_next = i.rd or -1
            self.pc_stale = True
        elif self.fast and mn == "fsd":
            uses.add("regs")
            uses.add("mem")
            uses.add("memf")
            uses.add("fregs")
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            body.append("    if a + 8 > msz:")
            body.append("        MS(a, 8, FV[%d])" % i.rs2)
            body.append("    else:")
            body.append("        D[a:a+8] = FV[%d].to_bytes(8, 'little')"
                        % i.rs2)
            self._dc_fused("a", "    ")
            self.pc_stale = True
        elif self.fast and mn == "tld":
            # Tagged load, fully inlined: mirrors _op_tld +
            # TagCodec.extract statement for statement, reading the
            # codec special registers (mutable via setoffset/setshift/
            # setmask) afresh at every execution.  ``m2`` stands in for
            # ``cpu.mem_addr2`` (the tag-plane probe address).
            uses.add("regs")
            uses.add("mem")
            uses.add("memf")
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            body.append("    cd_ = cpu.codec")
            body.append("    co_ = cd_.offset")
            body.append("    if a + 8 > msz:")
            body.append("        vd = ML(a, 8)")
            body.append("    else:")
            body.append("        vd = FB(D[a:a+8], 'little')")
            body.append("    m2 = None")
            body.append("    if co_ & 4:")           # nan_detect
            body.append("        if (vd >> 51) == 8191:")  # nanbox.is_boxed
            body.append("            tg = (vd >> cd_.shift) & cd_.mask")
            body.append("            it_ = cd_.int_tag")
            body.append("            if it_ is not None and tg == it_:")
            body.append("                w = vd & 4294967295")
            body.append("                x = (w - 4294967296 "
                        "if w & 2147483648 else w) & %d" % _M)
            body.append("            else:")
            body.append("                x = vd & %d" % ((1 << 47) - 1))
            body.append("            fb = 0")
            body.append("        else:")
            body.append("            x = vd")
            body.append("            tg = cd_.double_tag")
            body.append("            fb = 1")
            body.append("    else:")
            body.append("        dp_ = TD_[co_ & 3]")
            body.append("        if dp_:")
            body.append("            m2 = (a + dp_) & %d" % _M)
            body.append("            if m2 + 8 > msz:")
            body.append("                td = ML(m2, 8)")
            body.append("            else:")
            body.append("                td = FB(D[m2:m2+8], 'little')")
            body.append("            tg = (td >> cd_.shift) & cd_.mask")
            body.append("        else:")
            body.append("            tg = (vd >> cd_.shift) & cd_.mask")
            body.append("        x = vd")
            body.append("        fb = 1 if tg in cd_.fp_tags else 0")
            body.append("        if fb and m2 is not None and (co_ & 8):")
            body.append("            m2 = None")     # Float Self-Tagging
            if i.rd:
                body.append("    V[%d] = x" % i.rd)
                body.append("    T[%d] = tg & 255" % i.rd)
                body.append("    F[%d] = 1 if fb else 0" % i.rd)
            self._dc_fused("a", "    ")
            body.append("    if m2 is not None:")
            body.append("        if not dc(m2): c += dr(m2)")
            prev_next = i.rd or -1
            self.pc_stale = True
        elif self.fast and mn == "tsd":
            # Tagged store, fully inlined: mirrors _op_tsd +
            # TagCodec.insert, preserving the functional memory-op
            # order (old-tag load, value store, tag store).
            uses.add("regs")
            uses.add("mem")
            uses.add("memf")
            body.append("    a = (V[%d] + %d) & %d" % (i.rs1, i.imm, _M))
            body.append("    cd_ = cpu.codec")
            body.append("    co_ = cd_.offset")
            body.append("    m2 = None")
            body.append("    if co_ & 4:")           # nan-boxed: one dword
            body.append("        if F[%d]:" % i.rs2)
            body.append("            vd = V[%d]" % i.rs2)
            body.append("        else:")
            body.append("            vd = %d | ((T[%d] & cd_.mask) "
                        "<< cd_.shift) | (V[%d] & %d)"
                        % (8191 << 51, i.rs2, i.rs2, (1 << 47) - 1))
            body.append("        if a + 8 > msz:")
            body.append("            MS(a, 8, vd)")
            body.append("        else:")
            body.append("            D[a:a+8] = (vd & %d)"
                        ".to_bytes(8, 'little')" % _M)
            body.append("    else:")
            body.append("        ta = (a + TD_[co_ & 3]) & %d" % _M)
            body.append("        if ta + 8 > msz:")
            body.append("            otd = ML(ta, 8)")
            body.append("        else:")
            body.append("            otd = FB(D[ta:ta+8], 'little')")
            body.append("        fd_ = (cd_.mask & 255) << cd_.shift")
            body.append("        td = (otd & ~fd_ & %d) | ((T[%d] "
                        "& cd_.mask) << cd_.shift)" % (_M, i.rs2))
            body.append("        vd = V[%d]" % i.rs2)
            body.append("        if a + 8 > msz:")
            body.append("            MS(a, 8, vd)")
            body.append("        else:")
            body.append("            D[a:a+8] = vd.to_bytes(8, 'little')")
            body.append("        if ta + 8 > msz:")
            body.append("            MS(ta, 8, td)")
            body.append("        else:")
            body.append("            D[ta:ta+8] = (td & %d)"
                        ".to_bytes(8, 'little')" % _M)
            body.append("        if not ((co_ & 8) and F[%d]):" % i.rs2)
            body.append("            m2 = ta")       # tag-plane probe
            self._dc_fused("a", "    ")
            body.append("    if m2 is not None:")
            body.append("        if not dc(m2): c += dr(m2)")
            self.pc_stale = True
        elif self.fast and kind == K_TAGGED_ALU:
            # _tagged_alu inlined: TRT dict probe (hit/miss accounting
            # kept on the table object, whose dict identity survives
            # set_trt/flush_trt), the float path on the fbit, the int
            # path with the optional overflow trap, and write_typed.
            # Both mispredict paths replicate Cpu._type_mispredict and
            # exit the trace; the engine-selection guard guarantees
            # telemetry is off and ``trt.lookup`` is not rebound.
            uses.add("regs")
            uses.add("trt")
            sym = {"xadd": "+", "xsub": "-", "xmul": "*"}[mn]
            body.append("    k_ = (%d, T[%d], T[%d])"
                        % (TRT_OPCODES[mn], i.rs1, i.rs2))
            body.append("    o_ = tg_(k_)")
            body.append("    if o_ is None:")
            body.append("        tt_.misses += 1")
            body.append("        tt_.miss_keys[k_] = "
                        "tt_.miss_keys.get(k_, 0) + 1")
            self._redirect_exit(k, "        ")
            body.append("    tt_.hits += 1")
            body.append("    if F[%d]:" % i.rs1)
            if i.rd:
                # Finite-double arithmetic cannot raise in Python (it
                # saturates to inf per IEEE 754), so float_to_bits'
                # OverflowError fallback is unreachable here and the
                # struct round-trips are inlined directly.
                body.append("        x = UQ(PF(FU(UP(V[%d]))[0] %s "
                            "FU(UP(V[%d]))[0]))[0]" % (i.rs1, sym, i.rs2))
                body.append("        V[%d] = x" % i.rd)
                body.append("        T[%d] = o_ & 255" % i.rd)
                body.append("        F[%d] = 1" % i.rd)
                if mn != "xmul":
                    body.append("        c += %d" % lat.fp_alu)
            else:
                # rd == x0: the float result is pure and the write is
                # skipped, so fbit[0] stays 0 and no fp_alu is charged.
                body.append("        pass")
            body.append("    else:")
            body.append("        a_ = (V[%d] & %d) - (V[%d] & %d)"
                        % (i.rs1, _SIGN - 1, i.rs1, _SIGN))
            body.append("        b_ = (V[%d] & %d) - (V[%d] & %d)"
                        % (i.rs2, _SIGN - 1, i.rs2, _SIGN))
            body.append("        x = a_ %s b_" % sym)
            body.append("        if hi_ and not (-hi_ <= x < hi_):")
            body.append("            cpu.overflow_traps += 1")
            self._redirect_exit(k, "            ")
            if i.rd:
                body.append("        V[%d] = x & %d" % (i.rd, _M))
                body.append("        T[%d] = o_ & 255" % i.rd)
                body.append("        F[%d] = 0" % i.rd)
            if mn == "xmul":
                self.pend += lat.mul  # charged on the fast path
            self.pc_stale = True
        elif mn == "auipc":
            if i.rd:
                uses.add("regs")
                value = (pc + to_signed(i.imm << 12, 32)) & _M
                body.append("    V[%d] = %d" % (i.rd, value))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            self.pc_stale = True
        elif (alu := _alu_inline(i)) is not None:
            stmts, expr = alu
            if i.rd:
                uses.add("regs")
                for stmt in stmts:
                    body.append("    " + stmt)
                body.append("    V[%d] = %s" % (i.rd, expr))
                body.append("    T[%d] = %d" % (i.rd, _UNTYPED))
                body.append("    F[%d] = 0" % i.rd)
            # rd == x0: the handler's computation is pure, so a dead
            # write is simply elided.
            if kind == K_MUL:
                self.pend += lat.mul
            self.pc_stale = True
        else:
            # Handler-called fallback: the handler reads/writes cpu.pc,
            # so materialise it first if inlined code left it stale.
            if self.pc_stale:
                body.append("    cpu.pc = %d" % pc)
                self.pc_stale = False
            call = self._call(index)
            if kind in (K_BRANCH, K_JAL, K_JALR) and self.fast:
                # Unreachable in practice (all branch/jump mnemonics
                # are inlined above), but if a new mnemonic ever lands
                # here the front-end method must see — and the inline
                # sites must then re-read — the live global history.
                body.append("    g_.history = gh")
            if kind == K_BRANCH:
                body.append("    cpu.branch_taken = False")
                body.append("    " + call)
                body.append("    c += fe.conditional_branch(%d, "
                            "cpu.branch_taken, cpu.pc)" % pc)
                if self.fast:
                    body.append("    gh = g_.history")
                body.append("    if cpu.branch_taken:")
                self.emit_exit(k + 1, -1, "        ")
            elif kind == K_JAL:
                body.append("    " + call)
                body.append("    c += fe.direct_jump(%d, cpu.pc, %s, %d)"
                            % (pc, i.rd == 1, pc + 4))
                self.emit_exit(k + 1, -1, "    ")
            elif kind == K_JALR:
                body.append("    " + call)
                body.append("    c += fe.indirect_jump(%d, cpu.pc, "
                            "%s, %s, %d)"
                            % (pc, i.rd == 0 and i.rs1 == 1, i.rd == 1,
                               pc + 4))
                self.emit_exit(k + 1, -1, "    ")
            elif kind == K_LOAD:
                if mn == "tld":
                    body.append("    cpu.mem_addr2 = None")
                body.append("    " + call)
                if self.fast:
                    body.append("    a = cpu.mem_addr")
                    self._dc_fused("a", "    ")
                else:
                    body.append("    if not dc(cpu.mem_addr): "
                                "c += dr(cpu.mem_addr)")
                if mn == "tld":
                    body.append("    m = cpu.mem_addr2")
                    body.append("    if m is not None and not dc(m): "
                                "c += dr(m)")
                prev_next = i.rd or -1
                if mn == "chklw":
                    # Checked load classified as a plain load by the
                    # timing model: no redirect penalty, but the PC may
                    # have been redirected to R_hdl — guard the
                    # fall-through.
                    body.append("    if cpu.pc != %d:" % (pc + 4))
                    self.emit_exit(k + 1, prev_next, "        ")
            elif kind == K_STORE:
                if mn == "tsd":
                    body.append("    cpu.mem_addr2 = None")
                body.append("    " + call)
                if self.fast:
                    body.append("    a = cpu.mem_addr")
                    self._dc_fused("a", "    ")
                else:
                    body.append("    if not dc(cpu.mem_addr): "
                                "c += dr(cpu.mem_addr)")
                if mn == "tsd":
                    body.append("    m = cpu.mem_addr2")
                    body.append("    if m is not None and not dc(m): "
                                "c += dr(m)")
            elif kind == K_TAGGED_ALU:
                body.append("    cpu.redirect = False")
                body.append("    " + call)
                body.append("    if cpu.redirect:")
                body.append("        c += %d" % self.redirect_penalty)
                self.emit_exit(k + 1, -1, "        ")
                if mn == "xmul":
                    self.pend += lat.mul  # charged on the fast path
                elif i.rd:
                    body.append("    if cpu.regs.fbit[%d]: c += %d"
                                % (i.rd, lat.fp_alu))
            elif kind == K_CHECK:
                body.append("    cpu.redirect = False")
                body.append("    " + call)
                if mn != "tchk":
                    if self.fast:
                        body.append("    a = cpu.mem_addr")
                        self._dc_fused("a", "    ")
                    else:
                        body.append("    if not dc(cpu.mem_addr): "
                                    "c += dr(cpu.mem_addr)")
                body.append("    if cpu.redirect:")
                body.append("        c += %d" % self.redirect_penalty)
                self.emit_exit(k + 1, -1, "        ")
                if mn != "tchk":
                    prev_next = i.rd or -1
            elif kind == K_ECALL:
                body.append("    " + call)
                body.append("    m = cpu.pending_host_cost")
                body.append("    cpu.pending_host_cost = 0")
                body.append("    ct.host_instructions += m")
                body.append("    ct.host_calls += 1")
                body.append("    c += int(m * %r)" % lat.host_cpi)
                self.emit_exit(k + 1, -1, "    ")
            else:
                body.append("    " + call)
                if mn == "ebreak":
                    self.emit_exit(k + 1, -1, "    ")
                elif mn == "thdl":
                    # With the Section-5 path selector armed, thdl may
                    # redirect straight to the slow path.
                    body.append("    if cpu.pc != %d:" % (pc + 4))
                    self.emit_exit(k + 1, -1, "        ")
                extra = _EXTRA_LATENCY.get(kind)
                if extra is not None:
                    self.pend += getattr(lat, extra)
        self.prev_out = prev_next
        self.prev_pc = pc
        self.k += 1

    def finish(self, stop):
        """Emit the final fall-through exit unless the last instruction
        was a terminator (whose exit is already emitted)."""
        if self.instrs[stop - 1].mnemonic not in _TERMINATORS:
            exit_pc = self.base + 4 * stop if self.pc_stale else None
            self.emit_exit(self.k, self.prev_out, "    ", exit_pc=exit_pc)

    def build(self, filename):
        """Assemble, ``compile`` and ``exec`` the generated function."""
        lines = ["def _block(%s):" % ", ".join(self.sig), "    c = 0"]
        uses = self.uses
        if "regs" in uses:
            lines.append("    r = cpu.regs")
            lines.append("    V = r.value; T = r.type; F = r.fbit")
        if "mem" in uses:
            lines.append("    m_ = cpu.mem")
            lines.append("    ML = m_.load; MS = m_.store")
        if "memf" in uses:
            lines.append("    D = m_.data; msz = m_.size")
            lines.append("    FB = int.from_bytes")
        if "fregs" in uses:
            lines.append("    FV = cpu.fregs.bits")
        if "gsh" in uses:
            lines.append("    g_ = fe.gshare")
            lines.append("    gc = g_.counters; gh = g_.history")
        if "btb" in uses:
            lines.append("    bt = fe.btb._table")
        if "ras" in uses:
            lines.append("    rs_ = fe.ras._stack")
        if "dcf" in uses:
            lines.append("    dcc = dc.__self__; ds = dcc._sets")
        if "icf" in uses:
            lines.append("    iss = icc._sets")
        if "trt" in uses:
            lines.append("    tt_ = cpu.trt; tg_ = tt_._rules.get")
            lines.append("    ob_ = cpu.overflow_bits")
            lines.append("    hi_ = 1 << (ob_ - 1) if ob_ else 0")
        lines.extend(self.body)
        namespace = {"_h": self.table._h, "_i": self.table._i, "int": int,
                     "TD_": TAG_DWORD_DISPLACEMENT,
                     "UP": _PACK_U64.pack, "UQ": _PACK_U64.unpack,
                     "PF": _PACK_F64.pack, "FU": _PACK_F64.unpack}
        from repro.sim import backend
        return backend.load_unit("\n".join(lines), filename, namespace)


def _compile_block(table, start, max_len):
    """Generate, ``exec`` and return ``(fn, count)`` for the block
    entered at instruction index ``start``."""
    stop = _block_extent(table, start, max_len)
    emitter = _Emitter(table)
    for index in range(start, stop):
        emitter.emit(index)
    emitter.finish(stop)
    fn = emitter.build("<block@0x%x>" % (table.base + 4 * start))
    return fn, stop - start


def _fallback_block(table, index):
    """A compile-free single-instruction entry for ``index``.

    Used when :func:`_compile_block` fails: a plain Python closure that
    executes one instruction through ``Cpu.step`` and charges cycles
    with the exact statement order of
    :meth:`repro.uarch.pipeline.Machine._run_interpreted`, so counters
    stay bit-identical with both engines even for degraded entries.
    It never ``exec``-compiles anything, so it cannot itself fail.
    """
    instr = table.instructions[index]
    kind = table.kinds[index]
    pc = table.base + 4 * index
    lat = table.config.latency
    lus = lat.load_use_stall
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    mnemonic = instr.mnemonic

    def step(cpu, prev, ic, dc, dr, fe, ct, icc):
        cpu.step()
        c = 1
        if prev >= 0:
            if rs1 == prev or rs2 == prev:
                c += lus
                ct.load_use_stalls += 1
        out_prev = -1
        if not ic(pc):
            c += dr(pc)
        if kind:
            if kind == K_BRANCH:
                c += fe.conditional_branch(pc, cpu.branch_taken, cpu.pc)
            elif kind == K_JAL:
                c += fe.direct_jump(pc, cpu.pc, rd == 1, pc + 4)
            elif kind == K_JALR:
                c += fe.indirect_jump(pc, cpu.pc, rd == 0 and rs1 == 1,
                                      rd == 1, pc + 4)
            elif kind == K_LOAD:
                if not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.mem_addr2 is not None and not dc(cpu.mem_addr2):
                    c += dr(cpu.mem_addr2)
                if rd:
                    out_prev = rd
            elif kind == K_STORE:
                if not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.mem_addr2 is not None and not dc(cpu.mem_addr2):
                    c += dr(cpu.mem_addr2)
            elif kind == K_TAGGED_ALU:
                if cpu.redirect:
                    c += fe.pipeline_redirect()
                elif cpu.regs.fbit[rd]:
                    c += lat.fp_alu if mnemonic != "xmul" else lat.mul
                elif mnemonic == "xmul":
                    c += lat.mul
            elif kind == K_CHECK:
                is_load = mnemonic != "tchk"
                if is_load and not dc(cpu.mem_addr):
                    c += dr(cpu.mem_addr)
                if cpu.redirect:
                    c += fe.pipeline_redirect()
                elif is_load and rd:
                    out_prev = rd
            elif kind == K_ECALL:
                cost = cpu.pending_host_cost
                cpu.pending_host_cost = 0
                ct.host_instructions += cost
                ct.host_calls += 1
                c += int(cost * lat.host_cpi)
            elif kind == K_MUL:
                c += lat.mul
            elif kind == K_DIV:
                c += lat.div
            elif kind == K_FP_ALU:
                c += lat.fp_alu
            elif kind == K_FP_DIV:
                c += lat.fp_div
            elif kind == K_FP_SQRT:
                c += lat.fp_sqrt
        return c, out_prev

    return step


# One table per (program, machine config).  Keyed weakly so throwaway
# test programs do not pin their tables; the values hold no reference
# back to the program object.
_TABLES = weakref.WeakKeyDictionary()


def block_table(program, config):
    """The (shared, lazily filled) :class:`BlockTable` for a program
    under a machine configuration."""
    per_program = _TABLES.get(program)
    if per_program is None:
        per_program = {}
        _TABLES[program] = per_program
    table = per_program.get(config)
    if table is None:
        table = BlockTable(program, config)
        per_program[config] = table
    return table
