"""Execution tracing: instruction-level and bytecode-level views.

Debugging an interpreter running *on* a simulator needs two lenses: the
native instruction stream (with register/tag effects) and the bytecode
stream the interpreter is dispatching.  Both tracers are now *sinks* on
the :mod:`repro.telemetry` event bus, consuming the same ``retire``
events the profiler's instrumentation emits — one stream of truth, so
``repro trace`` and ``repro profile`` cannot disagree on what retired.
"""

from collections import deque
from dataclasses import dataclass

from repro.isa.disassembler import disassemble
from repro.isa.extension import TYPE_UNTYPED
from repro.isa.registers import int_register_name
from repro.telemetry.core import Telemetry, attach_cpu, detach_cpu
from repro.telemetry.sinks import Sink


@dataclass
class TraceEntry:
    """One retired instruction and its visible effect."""

    index: int
    pc: int
    text: str
    rd: int
    rd_value: int
    rd_tag: int
    redirect: bool

    def format(self):
        effect = ""
        if self.rd:
            effect = "  %s=0x%x" % (int_register_name(self.rd),
                                    self.rd_value)
            if self.rd_tag != TYPE_UNTYPED:
                effect += " [tag=%d]" % self.rd_tag
        if self.redirect:
            effect += "  !type-mispredict"
        return "%6d  %08x  %-32s%s" % (self.index, self.pc, self.text,
                                       effect)


class InstructionTracer(Sink):
    """A ``retire``-event sink keeping the last ``limit`` instructions.

    ``limit=None`` keeps everything (use only for short runs).  The
    tracer attaches its own single-category bus to the CPU, so every
    entry is derived from the same ``retire`` events the profiler sees.
    """

    def __init__(self, cpu, limit=64):
        self.cpu = cpu
        self.entries = deque(maxlen=limit)
        self._texts = {}
        self.telemetry = Telemetry(sinks=[self], categories={"retire"})
        attach_cpu(self.telemetry, cpu)

    def _text(self, instr):
        text = self._texts.get(id(instr))
        if text is None:
            text = disassemble(instr)
            self._texts[id(instr)] = text
        return text

    def handle(self, event):
        instr = event["instr"]
        self.entries.append(TraceEntry(
            index=event["instret"], pc=event["pc"],
            text=self._text(instr), rd=event["rd"],
            rd_value=event["rd_value"], rd_tag=event["rd_tag"],
            redirect=event["redirect"]))

    def step(self):
        """Retire one instruction (recorded via the event bus)."""
        return self.cpu.step()

    def run(self, max_instructions=1_000_000):
        cpu = self.cpu
        while not cpu.halted and cpu.instret < max_instructions:
            cpu.step()
        detach_cpu(cpu)
        return self.entries

    def format(self):
        return "\n".join(entry.format() for entry in self.entries)


class BytecodeTracer(Sink):
    """Records the bytecode stream an interpreter dispatches.

    ``entry_points`` maps instruction *byte addresses* to bytecode names
    (the same mapping the attribution machinery uses).  Dispatches are
    detected on the shared ``retire`` event stream: a retire at an entry
    address *is* a bytecode dispatch, by the same definition the flat
    profile uses for its span boundaries.
    """

    def __init__(self, cpu, entry_points, limit=None):
        self.cpu = cpu
        self.entry_points = dict(entry_points)
        self.trace = deque(maxlen=limit)
        self.counts = {}
        self.telemetry = Telemetry(sinks=[self], categories={"retire"})
        attach_cpu(self.telemetry, cpu)

    def handle(self, event):
        name = self.entry_points.get(event["pc"])
        if name is not None:
            self.trace.append(name)
            self.counts[name] = self.counts.get(name, 0) + 1

    def run(self, max_instructions=10_000_000):
        cpu = self.cpu
        while not cpu.halted and cpu.instret < max_instructions:
            cpu.step()
        detach_cpu(cpu)
        return self.trace

    def format(self, per_line=8):
        items = list(self.trace)
        lines = []
        for start in range(0, len(items), per_line):
            lines.append("  ".join(items[start:start + per_line]))
        return "\n".join(lines)
