"""Execution tracing: instruction-level and bytecode-level views.

Debugging an interpreter running *on* a simulator needs two lenses: the
native instruction stream (with register/tag effects) and the bytecode
stream the interpreter is dispatching.  ``InstructionTracer`` captures
the former from any :class:`~repro.sim.cpu.Cpu`; ``BytecodeTracer``
derives the latter from a program's attribution entry points.
"""

from collections import deque
from dataclasses import dataclass

from repro.isa.disassembler import disassemble
from repro.isa.extension import TYPE_UNTYPED
from repro.isa.registers import int_register_name


@dataclass
class TraceEntry:
    """One retired instruction and its visible effect."""

    index: int
    pc: int
    text: str
    rd: int
    rd_value: int
    rd_tag: int
    redirect: bool

    def format(self):
        effect = ""
        if self.rd:
            effect = "  %s=0x%x" % (int_register_name(self.rd),
                                    self.rd_value)
            if self.rd_tag != TYPE_UNTYPED:
                effect += " [tag=%d]" % self.rd_tag
        if self.redirect:
            effect += "  !type-mispredict"
        return "%6d  %08x  %-32s%s" % (self.index, self.pc, self.text,
                                       effect)


class InstructionTracer:
    """Steps a CPU while keeping the last ``limit`` retired instructions.

    ``limit=None`` keeps everything (use only for short runs).
    """

    def __init__(self, cpu, limit=64):
        self.cpu = cpu
        self.entries = deque(maxlen=limit)
        self._texts = {}

    def _text(self, instr):
        text = self._texts.get(id(instr))
        if text is None:
            text = disassemble(instr)
            self._texts[id(instr)] = text
        return text

    def step(self):
        cpu = self.cpu
        pc = cpu.pc
        instr = cpu.step()
        self.entries.append(TraceEntry(
            index=cpu.instret, pc=pc, text=self._text(instr),
            rd=instr.rd, rd_value=cpu.regs.value[instr.rd],
            rd_tag=cpu.regs.type[instr.rd], redirect=cpu.redirect))
        return instr

    def run(self, max_instructions=1_000_000):
        while not self.cpu.halted and \
                self.cpu.instret < max_instructions:
            self.step()
        return self.entries

    def format(self):
        return "\n".join(entry.format() for entry in self.entries)


class BytecodeTracer:
    """Records the bytecode stream an interpreter dispatches.

    ``entry_points`` maps instruction *byte addresses* to bytecode names
    (the same mapping the attribution machinery uses).
    """

    def __init__(self, cpu, entry_points, limit=None):
        self.cpu = cpu
        self.entry_points = dict(entry_points)
        self.trace = deque(maxlen=limit)
        self.counts = {}

    def run(self, max_instructions=10_000_000):
        cpu = self.cpu
        entries = self.entry_points
        while not cpu.halted and cpu.instret < max_instructions:
            pc = cpu.pc
            cpu.step()
            name = entries.get(pc)
            if name is not None:
                self.trace.append(name)
                self.counts[name] = self.counts.get(name, 0) + 1
        return self.trace

    def format(self, per_line=8):
        items = list(self.trace)
        lines = []
        for start in range(0, len(items), per_line):
            lines.append("  ".join(items[start:start + per_line]))
        return "\n".join(lines)
