"""The Type Rule Table: a small CAM keyed by (opcode, type1, type2).

The table is software-managed: ``set_trt`` pushes packed entries and
``flush_trt`` clears the table (Section 5, OS interactions).  Lookups are
performed implicitly by the tagged ALU instructions and ``tchk``; a miss is
a *type misprediction* that redirects the PC to ``R_hdl``.
"""

from repro.isa.extension import TRT_ENTRIES, TypeRule

# Opcode identifiers used in the packed set_trt encoding.
TRT_OPCODES = {"xadd": 0, "xsub": 1, "xmul": 2, "tchk": 3}


def pack_rule(rule):
    """Pack a :class:`TypeRule` into the 32-bit ``set_trt`` payload.

    Layout: ``[31:24] opcode id, [23:16] type_in1, [15:8] type_in2,
    [7:0] type_out``.
    """
    opcode_id = TRT_OPCODES[rule.opcode]
    return (opcode_id << 24) | ((rule.type_in1 & 0xFF) << 16) \
        | ((rule.type_in2 & 0xFF) << 8) | (rule.type_out & 0xFF)


def unpack_rule(word):
    """Inverse of :func:`pack_rule`."""
    names = {v: k for k, v in TRT_OPCODES.items()}
    return TypeRule(names[(word >> 24) & 0xFF], (word >> 16) & 0xFF,
                    (word >> 8) & 0xFF, word & 0xFF)


def attribution_keys(keys):
    """Render ``{(opcode_id, t1, t2): count}`` with JSON-safe string
    keys (``"xadd/19/3"``) — the shape stored in ``Counters`` and the
    disk cache."""
    names = {v: k for k, v in TRT_OPCODES.items()}
    return {"%s/%d/%d" % (names.get(op, str(op)), t1, t2): count
            for (op, t1, t2), count in keys.items()}


class TypeRuleTable:
    """A ``capacity``-entry CAM mapping (opcode, t1, t2) to the output tag."""

    def __init__(self, capacity=TRT_ENTRIES):
        self.capacity = capacity
        self._rules = {}
        self._order = []
        self.hits = 0
        self.misses = 0
        # Per-key miss attribution: {(opcode_id, t1, t2): count}.  The
        # miss path is the rare path (it costs a pipeline redirect), so
        # this stays always-on — it is what lets ``repro sweep`` report
        # TRT-miss attribution from cached runs with telemetry off.
        self.miss_keys = {}
        self.hit_keys = None  # populated only while telemetry is attached
        self._telemetry = None

    def __len__(self):
        return len(self._order)

    def push(self, word):
        """``set_trt``: insert a packed rule, evicting FIFO when full."""
        rule = unpack_rule(word)
        key = (TRT_OPCODES[rule.opcode], rule.type_in1, rule.type_in2)
        if key not in self._rules and len(self._order) >= self.capacity:
            evicted = self._order.pop(0)
            del self._rules[evicted]
        if key not in self._rules:
            self._order.append(key)
        self._rules[key] = rule.type_out

    def flush(self):
        """``flush_trt``: clear every entry."""
        self._rules.clear()
        self._order.clear()

    def load_rules(self, rules):
        """Pre-load rules at program launch (the paper's assumption)."""
        for rule in rules:
            self.push(pack_rule(rule))

    def lookup(self, opcode_id, type1, type2):
        """Return the output tag, or ``None`` on a type misprediction."""
        out = self._rules.get((opcode_id, type1, type2))
        if out is None:
            self.misses += 1
            key = (opcode_id, type1, type2)
            self.miss_keys[key] = self.miss_keys.get(key, 0) + 1
        else:
            self.hits += 1
        return out

    def attach_telemetry(self, telemetry):
        """Swap in the instrumented lookup (hot path!): per-key hit
        counting plus a ``trt`` event per miss.  Rebinding the method
        on the instance keeps the detached path identical to the
        uninstrumented class method — zero overhead when telemetry is
        off."""
        self._telemetry = telemetry
        self.hit_keys = {}
        self.lookup = self._lookup_instrumented

    def detach_telemetry(self):
        self._telemetry = None
        self.__dict__.pop("lookup", None)

    def _lookup_instrumented(self, opcode_id, type1, type2):
        key = (opcode_id, type1, type2)
        out = self._rules.get(key)
        if out is None:
            self.misses += 1
            self.miss_keys[key] = self.miss_keys.get(key, 0) + 1
            self._telemetry.emit({
                "cat": "trt", "name": "trt_miss", "opcode": opcode_id,
                "t1": type1, "t2": type2})
        else:
            self.hits += 1
            self.hit_keys[key] = self.hit_keys.get(key, 0) + 1
        return out

    def corrupt_entry(self, slot, out_mask=0, key_mask=0):
        """Fault injection: upset the CAM entry at ``slot``.

        ``out_mask`` XORs into the stored output tag (a data-array
        upset: lookups still hit but return a wrong tag).  ``key_mask``
        XORs into the entry's ``type_in1`` key byte (a tag-array upset:
        the original key now *misses* and a corrupted key matches
        instead).  Returns ``True`` when an entry was actually
        corrupted — an empty table absorbs the fault.
        """
        if not self._order:
            return False
        key = self._order[slot % len(self._order)]
        if key_mask:
            out = self._rules.pop(key)
            self._order.remove(key)
            opcode_id, t1, t2 = key
            new_key = (opcode_id, (t1 ^ key_mask) & 0xFF, t2)
            if new_key not in self._rules:
                self._order.append(new_key)
            self._rules[new_key] = out
            key = new_key
        if out_mask:
            self._rules[key] = (self._rules[key] ^ out_mask) & 0xFF
        return True

    def snapshot(self):
        """Context-switch save of table contents *and* the hit/miss
        counters — dropping the counters would let another process's
        type-check traffic corrupt this one's type-hit-rate statistics."""
        return {"rules": dict(self._rules), "order": list(self._order),
                "hits": self.hits, "misses": self.misses,
                "miss_keys": dict(self.miss_keys)}

    def restore(self, state):
        self._rules = dict(state["rules"])
        self._order = list(state["order"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.miss_keys = dict(state.get("miss_keys", ()))
