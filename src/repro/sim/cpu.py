"""Functional RV64 core with the Typed Architecture extension.

The CPU executes pre-decoded programs (see :mod:`repro.isa.assembler`).
Timing is layered on top by :class:`repro.uarch.pipeline.Machine`; this
module is purely architectural state plus per-step side-channel fields the
timing model inspects:

* ``mem_addr`` / ``mem_width`` / ``mem_store`` — first data access,
* ``mem_addr2`` / ``mem_width2`` — second access of ``tld``/``tsd``
  (separate tag double-word layouts),
* ``branch_taken`` — outcome of a conditional branch,
* ``redirect`` — ``True`` when a type/chk misprediction redirected the PC,
* ``pending_host_cost`` — native-library instructions charged by ``ecall``.

Type mispredictions (Section 3.2) redirect the PC to ``R_hdl`` and are
*not* exceptions: the slow path is the original software type-checking
code and execution never returns to the faulting instruction.
"""

import struct

from repro.sim.errors import (
    ExecutionLimitExceeded,
    IllegalInstruction,
    MemoryError_,
)
from repro.sim.regfile import FpRegisterFile, UnifiedRegisterFile
from repro.sim.tagio import TagCodec
from repro.sim.trt import TRT_OPCODES, TypeRuleTable

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63
INT64_MIN = -(1 << 63)


def to_signed(value, bits=64):
    """Interpret ``value`` as a signed ``bits``-wide integer."""
    if bits == 64:  # the common case: constants precomputed
        return (value & (SIGN64 - 1)) - (value & SIGN64)
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def to_unsigned(value):
    return value & MASK64


_PACK_U64 = struct.Struct("<Q")
_PACK_F64 = struct.Struct("<d")


def bits_to_float(bits):
    return _PACK_F64.unpack(_PACK_U64.pack(bits & MASK64))[0]


def float_to_bits(value):
    try:
        return _PACK_U64.unpack(_PACK_F64.pack(value))[0]
    except (OverflowError, ValueError):
        # Infinity with the right sign for out-of-range magnitudes.
        return 0xFFF0000000000000 if value < 0 else 0x7FF0000000000000


class Cpu:
    """Architectural state and the instruction-semantics dispatch."""

    def __init__(self, program, memory, host=None, tag_codec=None,
                 overflow_bits=None, trt_capacity=None,
                 deopt_threshold=None, deopt_window=32):
        """``deopt_threshold`` enables Section 5's path-selector variant
        of ``thdl``: each ``thdl`` site tracks its recent type-miss rate
        and, once more than ``deopt_threshold`` of the last
        ``deopt_window`` executions mispredicted, redirects straight to
        the slow path instead of attempting the fast path."""
        self.program = program
        self.mem = memory
        self.host = host
        self.codec = tag_codec or TagCodec()
        self.regs = UnifiedRegisterFile()
        self.fregs = FpRegisterFile()
        self.trt = TypeRuleTable() if trt_capacity is None \
            else TypeRuleTable(trt_capacity)
        self.overflow_bits = overflow_bits

        self.pc = program.base
        self.r_hdl = 0
        self.r_ctype = 0
        self.halted = False
        self.exit_code = 0
        self.instret = 0
        self.overflow_traps = 0
        self.chk_hits = 0
        self.chk_misses = 0
        self.deopt_threshold = deopt_threshold
        self.deopt_window = deopt_window
        self.deopt_redirects = 0
        self._deopt_sites = {}  # thdl PC -> [executions, misses]
        self._active_thdl_site = None

        # Telemetry bus (repro.telemetry).  ``None`` keeps every
        # instrumentation point a dead branch on an already-rare path;
        # hot-path retire events attach by rebinding ``step`` instead
        # (see repro.telemetry.core.attach_cpu).
        self.telemetry = None

        # Per-step side channel for the timing layer.
        self.mem_addr = None
        self.mem_width = 0
        self.mem_store = False
        self.mem_addr2 = None
        self.mem_width2 = 0
        self.branch_taken = False
        self.redirect = False
        self.pending_host_cost = 0

        self._base = program.base
        dispatch = _DISPATCH
        try:
            self._ops = [(dispatch[i.mnemonic], i)
                         for i in program.instructions]
        except KeyError as err:
            raise IllegalInstruction("no semantics for %s" % err) from None

    # -- special registers -------------------------------------------------
    def save_context(self):
        """Save the extension state a context switch must preserve
        (Section 5): tags and F/I bits, the special registers and the TRT.
        """
        return {
            "regs": self.regs.snapshot(),
            "offset": self.codec.offset,
            "shift": self.codec.shift,
            "mask": self.codec.mask,
            "hdl": self.r_hdl,
            "trt": self.trt.snapshot(),
        }

    def restore_context(self, state):
        self.regs.restore(state["regs"])
        self.codec.offset = state["offset"]
        self.codec.shift = state["shift"]
        self.codec.mask = state["mask"]
        self.r_hdl = state["hdl"]
        self.trt.restore(state["trt"])

    # -- execution ----------------------------------------------------------
    def step(self):
        """Execute one instruction; returns the instruction executed."""
        self.mem_addr = None
        self.mem_addr2 = None
        self.branch_taken = False
        self.redirect = False
        index = (self.pc - self._base) >> 2
        try:
            op, instr = self._ops[index]
        except IndexError:
            raise IllegalInstruction("PC 0x%x outside program" % self.pc,
                                     pc=self.pc) from None
        try:
            op(self, instr)
        except MemoryError_ as err:
            raise err.with_context(pc=self.pc, mnemonic=instr.mnemonic)
        self.instret += 1
        return instr

    def run(self, max_instructions=100_000_000):
        """Run until ``ebreak``/exit or the instruction budget is hit."""
        while not self.halted:
            instr = self.step()
            if self.instret >= max_instructions:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions at PC 0x%x"
                    % (max_instructions, self.pc),
                    pc=self.pc, mnemonic=instr.mnemonic)
        return self.exit_code

    # -- fault injection ----------------------------------------------------
    def attach_fault_hook(self, hook):
        """Install a per-instruction fault hook (see :mod:`repro.faults`).

        ``hook(cpu)`` runs *before* each instruction executes, with
        ``cpu.instret`` identifying the upcoming instruction index —
        the hook corrupts architectural state (registers, tags, TRT,
        memory, extractor config) at exact, reproducible points.

        The hook attaches by rebinding ``step`` on the instance, the
        same idiom telemetry uses: the unfaulted path stays untouched,
        and :meth:`repro.uarch.pipeline.Machine.run` sees the shadowed
        ``step`` and deopts from the basic-block engine to the
        per-instruction reference loop, so timing counters and the
        watchdog stay honest under injection.
        """
        base_step = type(self).step

        def step():
            hook(self)
            return base_step(self)

        self.step = step

    def detach_fault_hook(self):
        """Undo :meth:`attach_fault_hook` (no-op when not attached)."""
        self.__dict__.pop("step", None)

    # -- helpers used by the semantic functions ------------------------------
    def _load(self, addr, width, signed):
        self.mem_addr = addr
        self.mem_width = width
        self.mem_store = False
        return self.mem.load(addr, width, signed=signed)

    def _store(self, addr, width, value):
        self.mem_addr = addr
        self.mem_width = width
        self.mem_store = True
        self.mem.store(addr, width, value)

    def _type_mispredict(self):
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit({"cat": "mispredict", "name": "type_mispredict",
                            "pc": self.pc, "target": self.r_hdl,
                            "instret": self.instret})
        self.pc = self.r_hdl
        self.redirect = True
        if self._active_thdl_site is not None:
            self._deopt_sites[self._active_thdl_site][1] += 1
            self._active_thdl_site = None


# ---------------------------------------------------------------------------
# Semantic functions.  Each takes (cpu, instr) and must set cpu.pc.
# ---------------------------------------------------------------------------

def _advance(cpu):
    cpu.pc += 4


def _op_lui(cpu, i):
    cpu.regs.write(i.rd, to_unsigned(to_signed(i.imm << 12, 32)))
    cpu.pc += 4


def _op_auipc(cpu, i):
    cpu.regs.write(i.rd, (cpu.pc + to_signed(i.imm << 12, 32)) & MASK64)
    cpu.pc += 4


def _op_jal(cpu, i):
    cpu.regs.write(i.rd, cpu.pc + 4)
    cpu.pc = (cpu.pc + i.imm) & MASK64


def _op_jalr(cpu, i):
    target = (cpu.regs.value[i.rs1] + i.imm) & MASK64 & ~1
    cpu.regs.write(i.rd, cpu.pc + 4)
    cpu.pc = target


def _branch(compare):
    def op(cpu, i):
        if compare(cpu.regs.value[i.rs1], cpu.regs.value[i.rs2]):
            cpu.pc = (cpu.pc + i.imm) & MASK64
            cpu.branch_taken = True
        else:
            cpu.pc += 4
    return op


def _load_op(width, signed):
    def op(cpu, i):
        addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
        cpu.regs.write(i.rd, to_unsigned(cpu._load(addr, width, signed)))
        cpu.pc += 4
    return op


def _store_op(width):
    def op(cpu, i):
        addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
        cpu._store(addr, width, cpu.regs.value[i.rs2])
        cpu.pc += 4
    return op


def _alu_imm(fn):
    def op(cpu, i):
        cpu.regs.write(i.rd, fn(cpu.regs.value[i.rs1], i.imm) & MASK64)
        cpu.pc += 4
    return op


def _alu_reg(fn):
    def op(cpu, i):
        cpu.regs.write(
            i.rd, fn(cpu.regs.value[i.rs1], cpu.regs.value[i.rs2]) & MASK64)
        cpu.pc += 4
    return op


def _word(value):
    """Truncate to 32 bits then sign-extend (RV64 *W semantics)."""
    return to_unsigned(to_signed(value, 32))


def _trunc_div(a, b):
    """Truncating (toward-zero) integer division on exact ints."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _div(a, b):
    a, b = to_signed(a), to_signed(b)
    if b == 0:
        return MASK64  # -1
    if a == INT64_MIN and b == -1:
        return to_unsigned(INT64_MIN)
    return to_unsigned(_trunc_div(a, b))


def _rem(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    if sa == INT64_MIN and sb == -1:
        return 0
    return to_unsigned(sa - sb * _trunc_div(sa, sb))


def _fp_binary(fn):
    def op(cpu, i):
        a = bits_to_float(cpu.fregs.bits[i.rs1])
        b = bits_to_float(cpu.fregs.bits[i.rs2])
        try:
            result = fn(a, b)
        except ZeroDivisionError:
            result = float("inf") if a > 0 else float("-inf") if a < 0 \
                else float("nan")
        cpu.fregs.write(i.rd, float_to_bits(result))
        cpu.pc += 4
    return op


def _fp_compare(fn):
    def op(cpu, i):
        a = bits_to_float(cpu.fregs.bits[i.rs1])
        b = bits_to_float(cpu.fregs.bits[i.rs2])
        result = 0 if (a != a or b != b) else (1 if fn(a, b) else 0)
        cpu.regs.write(i.rd, result)
        cpu.pc += 4
    return op


def _op_fsqrt(cpu, i):
    value = bits_to_float(cpu.fregs.bits[i.rs1])
    result = value ** 0.5 if value >= 0 else float("nan")
    cpu.fregs.write(i.rd, float_to_bits(result))
    cpu.pc += 4


def _sign_inject(fn):
    def op(cpu, i):
        a, b = cpu.fregs.bits[i.rs1], cpu.fregs.bits[i.rs2]
        cpu.fregs.write(i.rd, (a & ~SIGN64) | (fn(a, b) & SIGN64))
        cpu.pc += 4
    return op


def _clamp_int(value, bits):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return max(lo, min(hi, value))


def _op_fcvt_l_d(cpu, i):
    value = bits_to_float(cpu.fregs.bits[i.rs1])
    if value != value:  # NaN converts to max per RISC-V
        result = (1 << 63) - 1
    else:
        result = _clamp_int(int(value), 64)
    cpu.regs.write(i.rd, to_unsigned(result))
    cpu.pc += 4


def _op_fcvt_w_d(cpu, i):
    value = bits_to_float(cpu.fregs.bits[i.rs1])
    if value != value:
        result = (1 << 31) - 1
    else:
        result = _clamp_int(int(value), 32)
    cpu.regs.write(i.rd, to_unsigned(result))
    cpu.pc += 4


def _op_fcvt_d_l(cpu, i):
    cpu.fregs.write(i.rd,
                    float_to_bits(float(to_signed(cpu.regs.value[i.rs1]))))
    cpu.pc += 4


def _op_fcvt_d_w(cpu, i):
    cpu.fregs.write(
        i.rd, float_to_bits(float(to_signed(cpu.regs.value[i.rs1], 32))))
    cpu.pc += 4


def _op_fmv_x_d(cpu, i):
    cpu.regs.write(i.rd, cpu.fregs.bits[i.rs1])
    cpu.pc += 4


def _op_fmv_d_x(cpu, i):
    cpu.fregs.write(i.rd, cpu.regs.value[i.rs1])
    cpu.pc += 4


def _op_fld(cpu, i):
    addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
    cpu.fregs.write(i.rd, cpu._load(addr, 8, False))
    cpu.pc += 4


def _op_fsd(cpu, i):
    addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
    cpu._store(addr, 8, cpu.fregs.bits[i.rs2])
    cpu.pc += 4


def _op_ecall(cpu, i):
    cost = cpu.host.dispatch(cpu)
    cpu.pending_host_cost += cost
    telemetry = cpu.telemetry
    if telemetry is not None:
        telemetry.emit({"cat": "hostcall", "name": "ecall", "pc": cpu.pc,
                        "cost": cost, "instret": cpu.instret})
    cpu.pc += 4


def _op_ebreak(cpu, i):
    cpu.halted = True
    cpu.pc += 4


# -- Typed Architecture extension -------------------------------------------

def _op_tld(cpu, i):
    codec = cpu.codec
    addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
    value_dword = cpu._load(addr, 8, False)
    tag_dword = value_dword
    displacement = codec.tag_displacement
    if not codec.nan_detect and displacement != 0:
        tag_addr = (addr + displacement) & MASK64
        tag_dword = cpu.mem.load(tag_addr, 8)
        cpu.mem_addr2 = tag_addr
        cpu.mem_width2 = 8
    value, tag, fbit = codec.extract(value_dword, tag_dword)
    if fbit and codec.self_tag and cpu.mem_addr2 is not None:
        # Float Self-Tagging: an FP value's tag is recoverable from the
        # float payload, so the tag-plane probe costs nothing.  The
        # functional read above keeps the architectural tag plane
        # coherent; only the timing charge is dropped.
        cpu.mem_addr2 = None
        cpu.mem_width2 = 0
    cpu.regs.write_typed(i.rd, value, tag, fbit)
    cpu.pc += 4


def _op_tsd(cpu, i):
    codec = cpu.codec
    regs = cpu.regs
    addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
    displacement = codec.tag_displacement
    old_tag_dword = 0
    tag_addr = (addr + displacement) & MASK64
    if not codec.nan_detect:
        old_tag_dword = cpu.mem.load(tag_addr, 8)
    value_dword, tag_dword = codec.insert(
        regs.value[i.rs2], regs.type[i.rs2], regs.fbit[i.rs2], old_tag_dword)
    cpu._store(addr, 8, value_dword)
    if tag_dword is not None:
        cpu.mem.store(tag_addr, 8, tag_dword)
        if not (codec.self_tag and regs.fbit[i.rs2]):
            # Under Float Self-Tagging the FP tag rides in the float
            # payload: the tag plane is kept coherent functionally but
            # the store costs no second memory access.
            cpu.mem_addr2 = tag_addr
            cpu.mem_width2 = 8
    cpu.pc += 4


def _tagged_alu(opcode_id, int_fn, float_fn):
    def op(cpu, i):
        regs = cpu.regs
        t1, t2 = regs.type[i.rs1], regs.type[i.rs2]
        out_tag = cpu.trt.lookup(opcode_id, t1, t2)
        if out_tag is None:
            cpu._type_mispredict()
            return
        if regs.fbit[i.rs1]:
            a = bits_to_float(regs.value[i.rs1])
            b = bits_to_float(regs.value[i.rs2])
            result = float_to_bits(float_fn(a, b))
            regs.write_typed(i.rd, result, out_tag, 1)
        else:
            a = to_signed(regs.value[i.rs1])
            b = to_signed(regs.value[i.rs2])
            result = int_fn(a, b)
            bits = cpu.overflow_bits
            if bits is not None and not \
                    -(1 << (bits - 1)) <= result < (1 << (bits - 1)):
                cpu.overflow_traps += 1
                telemetry = cpu.telemetry
                if telemetry is not None:
                    telemetry.emit({"cat": "trap", "name": "overflow",
                                    "pc": cpu.pc, "mnemonic": i.mnemonic,
                                    "instret": cpu.instret})
                cpu._type_mispredict()
                return
            regs.write_typed(i.rd, to_unsigned(result), out_tag, 0)
        cpu.pc += 4
    return op


def _op_tchk(cpu, i):
    regs = cpu.regs
    out = cpu.trt.lookup(TRT_OPCODES["tchk"], regs.type[i.rs1],
                         regs.type[i.rs2])
    if out is None:
        cpu._type_mispredict()
    else:
        cpu.pc += 4


def _op_tget(cpu, i):
    cpu.regs.write(i.rd, cpu.regs.type[i.rs1])
    cpu.pc += 4


def _op_tset(cpu, i):
    # tset Ra, Rb (rs1, rs2): Rb.t <- Ra.v[7:0]
    tag = cpu.regs.value[i.rs1] & 0xFF
    cpu.regs.set_tag(i.rs2, tag, cpu.codec.fbit_for(tag))
    cpu.pc += 4


def _op_thdl(cpu, i):
    cpu.r_hdl = (cpu.pc + i.imm) & MASK64
    if cpu.deopt_threshold is not None:
        # Path-selector variant (Section 5): revert to the slow path when
        # this site's recent miss rate is high.  Counters decay every
        # ``deopt_window`` executions so the site can re-optimise.
        stats = cpu._deopt_sites.get(cpu.pc)
        if stats is None:
            stats = [0, 0]
            cpu._deopt_sites[cpu.pc] = stats
        stats[0] += 1
        if stats[0] >= cpu.deopt_window:
            stats[0] >>= 1
            stats[1] >>= 1
        if stats[0] >= 8 and stats[1] > cpu.deopt_threshold * stats[0]:
            cpu.deopt_redirects += 1
            cpu._active_thdl_site = None
            cpu.pc = cpu.r_hdl
            return
        cpu._active_thdl_site = cpu.pc
    cpu.pc += 4


def _op_setoffset(cpu, i):
    cpu.codec.set_offset(cpu.regs.value[i.rs1])
    cpu.pc += 4


def _op_setmask(cpu, i):
    cpu.codec.set_mask(cpu.regs.value[i.rs1])
    cpu.pc += 4


def _op_setshift(cpu, i):
    cpu.codec.set_shift(cpu.regs.value[i.rs1])
    cpu.pc += 4


def _op_set_trt(cpu, i):
    cpu.trt.push(cpu.regs.value[i.rs1])
    cpu.pc += 4


def _op_flush_trt(cpu, i):
    cpu.trt.flush()
    cpu.pc += 4


# -- Checked Load (comparator) ------------------------------------------------

def _op_settype(cpu, i):
    cpu.r_ctype = cpu.regs.value[i.rs1] & 0xFFFFFFFF
    cpu.pc += 4


def _checked_load(width):
    def op(cpu, i):
        addr = (cpu.regs.value[i.rs1] + i.imm) & MASK64
        value = cpu._load(addr, width, False)
        cpu.regs.write(i.rd, value)
        if value != cpu.r_ctype:
            cpu.chk_misses += 1
            cpu._type_mispredict()
        else:
            cpu.chk_hits += 1
            cpu.pc += 4
    return op


_op_chklb = _checked_load(1)
_op_chklw = _checked_load(4)


def _build_dispatch():
    shift_mask = 0x3F
    table = {
        "lui": _op_lui, "auipc": _op_auipc,
        "jal": _op_jal, "jalr": _op_jalr,
        "beq": _branch(lambda a, b: a == b),
        "bne": _branch(lambda a, b: a != b),
        "blt": _branch(lambda a, b: to_signed(a) < to_signed(b)),
        "bge": _branch(lambda a, b: to_signed(a) >= to_signed(b)),
        "bltu": _branch(lambda a, b: a < b),
        "bgeu": _branch(lambda a, b: a >= b),
        "lb": _load_op(1, True), "lh": _load_op(2, True),
        "lw": _load_op(4, True), "ld": _load_op(8, False),
        "lbu": _load_op(1, False), "lhu": _load_op(2, False),
        "lwu": _load_op(4, False),
        "sb": _store_op(1), "sh": _store_op(2),
        "sw": _store_op(4), "sd": _store_op(8),
        "addi": _alu_imm(lambda a, imm: a + imm),
        "slti": _alu_imm(lambda a, imm: 1 if to_signed(a) < imm else 0),
        "sltiu": _alu_imm(
            lambda a, imm: 1 if a < to_unsigned(imm) else 0),
        "xori": _alu_imm(lambda a, imm: a ^ to_unsigned(imm)),
        "ori": _alu_imm(lambda a, imm: a | to_unsigned(imm)),
        "andi": _alu_imm(lambda a, imm: a & to_unsigned(imm)),
        "slli": _alu_imm(lambda a, imm: a << (imm & shift_mask)),
        "srli": _alu_imm(lambda a, imm: a >> (imm & shift_mask)),
        "srai": _alu_imm(
            lambda a, imm: to_unsigned(to_signed(a) >> (imm & shift_mask))),
        "addiw": _alu_imm(lambda a, imm: _word(a + imm)),
        "slliw": _alu_imm(lambda a, imm: _word(a << (imm & 0x1F))),
        "srliw": _alu_imm(lambda a, imm: _word((a & 0xFFFFFFFF)
                                               >> (imm & 0x1F))),
        "sraiw": _alu_imm(
            lambda a, imm: _word(to_signed(a, 32) >> (imm & 0x1F))),
        "add": _alu_reg(lambda a, b: a + b),
        "sub": _alu_reg(lambda a, b: a - b),
        "sll": _alu_reg(lambda a, b: a << (b & shift_mask)),
        "slt": _alu_reg(lambda a, b: 1 if to_signed(a) < to_signed(b) else 0),
        "sltu": _alu_reg(lambda a, b: 1 if a < b else 0),
        "xor": _alu_reg(lambda a, b: a ^ b),
        "srl": _alu_reg(lambda a, b: a >> (b & shift_mask)),
        "sra": _alu_reg(
            lambda a, b: to_unsigned(to_signed(a) >> (b & shift_mask))),
        "or": _alu_reg(lambda a, b: a | b),
        "and": _alu_reg(lambda a, b: a & b),
        "addw": _alu_reg(lambda a, b: _word(a + b)),
        "subw": _alu_reg(lambda a, b: _word(a - b)),
        "sllw": _alu_reg(lambda a, b: _word(a << (b & 0x1F))),
        "srlw": _alu_reg(lambda a, b: _word((a & 0xFFFFFFFF) >> (b & 0x1F))),
        "sraw": _alu_reg(
            lambda a, b: _word(to_signed(a, 32) >> (b & 0x1F))),
        "mul": _alu_reg(lambda a, b: a * b),
        "mulh": _alu_reg(
            lambda a, b: to_unsigned((to_signed(a) * to_signed(b)) >> 64)),
        "mulhsu": _alu_reg(lambda a, b: to_unsigned((to_signed(a) * b) >> 64)),
        "mulhu": _alu_reg(lambda a, b: (a * b) >> 64),
        "div": _alu_reg(_div),
        "divu": _alu_reg(lambda a, b: MASK64 if b == 0 else a // b),
        "rem": _alu_reg(_rem),
        "remu": _alu_reg(lambda a, b: a if b == 0 else a % b),
        "mulw": _alu_reg(lambda a, b: _word(a * b)),
        "divw": _alu_reg(
            lambda a, b: to_unsigned(to_signed(_div_w(a, b), 32))),
        "divuw": _alu_reg(
            lambda a, b: _word(MASK64 if (b & 0xFFFFFFFF) == 0
                               else (a & 0xFFFFFFFF) // (b & 0xFFFFFFFF))),
        "remw": _alu_reg(
            lambda a, b: to_unsigned(to_signed(_rem_w(a, b), 32))),
        "remuw": _alu_reg(
            lambda a, b: _word((a & 0xFFFFFFFF) if (b & 0xFFFFFFFF) == 0
                               else (a & 0xFFFFFFFF) % (b & 0xFFFFFFFF))),
        "fld": _op_fld, "fsd": _op_fsd,
        "fadd.d": _fp_binary(lambda a, b: a + b),
        "fsub.d": _fp_binary(lambda a, b: a - b),
        "fmul.d": _fp_binary(lambda a, b: a * b),
        "fdiv.d": _fp_binary(lambda a, b: a / b),
        "fsqrt.d": _op_fsqrt,
        "fsgnj.d": _sign_inject(lambda a, b: b),
        "fsgnjn.d": _sign_inject(lambda a, b: ~b),
        "fsgnjx.d": _sign_inject(lambda a, b: a ^ b),
        "fmin.d": _fp_binary(min),
        "fmax.d": _fp_binary(max),
        "feq.d": _fp_compare(lambda a, b: a == b),
        "flt.d": _fp_compare(lambda a, b: a < b),
        "fle.d": _fp_compare(lambda a, b: a <= b),
        "fcvt.l.d": _op_fcvt_l_d, "fcvt.w.d": _op_fcvt_w_d,
        "fcvt.d.l": _op_fcvt_d_l, "fcvt.d.w": _op_fcvt_d_w,
        "fmv.x.d": _op_fmv_x_d, "fmv.d.x": _op_fmv_d_x,
        "ecall": _op_ecall, "ebreak": _op_ebreak,
        "tld": _op_tld, "tsd": _op_tsd,
        "xadd": _tagged_alu(TRT_OPCODES["xadd"], lambda a, b: a + b,
                            lambda a, b: a + b),
        "xsub": _tagged_alu(TRT_OPCODES["xsub"], lambda a, b: a - b,
                            lambda a, b: a - b),
        "xmul": _tagged_alu(TRT_OPCODES["xmul"], lambda a, b: a * b,
                            lambda a, b: a * b),
        "tchk": _op_tchk, "tget": _op_tget, "tset": _op_tset,
        "thdl": _op_thdl,
        "setoffset": _op_setoffset, "setmask": _op_setmask,
        "setshift": _op_setshift, "set_trt": _op_set_trt,
        "flush_trt": _op_flush_trt,
        "settype": _op_settype, "chklb": _op_chklb, "chklw": _op_chklw,
    }
    return table


def _div_w(a, b):
    a32, b32 = to_signed(a, 32), to_signed(b, 32)
    if b32 == 0:
        return -1
    if a32 == -(1 << 31) and b32 == -1:
        return -(1 << 31)
    return _trunc_div(a32, b32)


def _rem_w(a, b):
    a32, b32 = to_signed(a, 32), to_signed(b, 32)
    if b32 == 0:
        return a32
    if a32 == -(1 << 31) and b32 == -1:
        return 0
    return a32 - b32 * _trunc_div(a32, b32)


_DISPATCH = _build_dispatch()
