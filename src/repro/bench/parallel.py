"""Shard the benchmark matrix across cores.

The (engine x benchmark x config) sweep is embarrassingly parallel:
every cell is an independent, deterministic simulation.
:func:`run_matrix_parallel` resolves cache hits in the parent (memory
first, then the disk cache of :mod:`repro.bench.cache`), ships only
the misses to a :class:`~concurrent.futures.ProcessPoolExecutor`, and
falls back to the in-process serial path when one worker (or no pool
at all) is available — results are identical either way, cell by
cell, because the simulator is deterministic.

Workers run each cell with ``use_cache=False``; the parent alone
publishes results to the memory and disk caches, so cache writes are
single-writer regardless of pool size (the disk cache's atomic
rename makes even racing processes safe).
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from repro.bench import cache as result_cache
from repro.bench import runner
from repro.bench.runner import ENGINES
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import CONFIGS


@dataclass
class CellProgress:
    """One progress/metrics event, emitted per completed cell."""

    key: tuple        #: (engine, benchmark, config)
    scale: int
    cached: bool      #: satisfied from the memory/disk cache
    seconds: float    #: wall-clock simulation time (0.0 for hits)
    instructions: int  #: total dynamic instructions of the cell
    completed: int    #: cells finished so far, this sweep
    total: int        #: cells in the sweep
    cache_hits: int   #: cache hits so far, this sweep
    mips: float = 0.0  #: the record's simulated MIPS (survives caching)

    @property
    def throughput(self):
        """Simulated instructions per second (0.0 for cache hits)."""
        return self.instructions / self.seconds if self.seconds else 0.0


def matrix_cells(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
                 configs=CONFIGS, scales=None):
    """The sweep's cells as (engine, benchmark, config, scale) tuples,
    in the canonical (serial ``run_matrix``) order."""
    cells = []
    for engine in engines:
        for benchmark in benchmarks:
            scale = runner.resolve_scale(benchmark,
                                         (scales or {}).get(benchmark))
            for config in configs:
                cells.append((engine, benchmark, config, scale))
    return cells


def _warm_worker(engines, configs):
    """Pool initializer: assemble the interpreter text for every
    (engine, config) this worker will run, so the one-time per-process
    setup cost is paid up front instead of inside the first cell."""
    for engine in engines:
        if engine == "lua":
            from repro.engines.lua import vm as engine_vm
        else:
            from repro.engines.js import vm as engine_vm
        for config in configs:
            engine_vm.interpreter_program(config)


def _simulate_cell(cell):
    """Worker body: simulate one cell, uncached; returns
    (record, wall_seconds).  Must stay module-level (picklable)."""
    engine, benchmark, config, scale = cell
    start = time.perf_counter()
    record = runner.run_benchmark(engine, benchmark, config, scale=scale,
                                  use_cache=False)
    return record, time.perf_counter() - start


def run_matrix_parallel(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
                        configs=CONFIGS, scales=None, max_workers=None,
                        use_cache=True, progress=None):
    """Run the sweep across processes; returns the same
    ``{(engine, benchmark, config): record}`` dict as
    :func:`repro.bench.runner.run_matrix`, in the same order.

    ``max_workers`` defaults to the CPU count; ``1`` (or an
    unavailable pool) degrades gracefully to the serial in-process
    path.  ``progress`` receives one :class:`CellProgress` per
    completed cell, in completion order; the returned dict is ordered
    canonically regardless.
    """
    cells = matrix_cells(engines, benchmarks, configs, scales)
    total = len(cells)
    state = {"completed": 0, "hits": 0}
    results = {}

    def report(cell, record, cached, seconds):
        state["completed"] += 1
        if cached:
            state["hits"] += 1
        if progress is not None:
            progress(CellProgress(
                key=cell[:3], scale=cell[3], cached=cached,
                seconds=seconds,
                instructions=record.counters.instructions,
                completed=state["completed"], total=total,
                cache_hits=state["hits"],
                mips=record.simulated_mips))

    disk = result_cache.active_cache() if use_cache else None
    pending = []
    for cell in cells:
        record = runner.cached_record(*cell) if use_cache else None
        if record is not None:
            results[cell] = record
            report(cell, record, True, 0.0)
        else:
            pending.append(cell)

    def finish(cell, record, seconds):
        if use_cache:
            runner.publish(record, disk=disk)
        results[cell] = record
        report(cell, record, False, seconds)

    workers = min(max_workers or os.cpu_count() or 1, len(pending))
    if pending and workers > 1:
        try:
            with ProcessPoolExecutor(
                    max_workers=workers, initializer=_warm_worker,
                    initargs=(tuple(engines), tuple(configs))) as pool:
                futures = {pool.submit(_simulate_cell, cell): cell
                           for cell in pending}
                for future in as_completed(futures):
                    record, seconds = future.result()
                    finish(futures[future], record, seconds)
        except Exception:
            # Pool unavailable (sandboxed semaphores, missing /dev/shm,
            # broken pool, unpicklable state...): anything not yet
            # computed is re-run serially below; a real simulation bug
            # re-raises from the serial path with a clean traceback.
            pass
        pending = [cell for cell in pending if cell not in results]
    for cell in pending:
        record, seconds = _simulate_cell(cell)
        finish(cell, record, seconds)

    return {cell[:3]: results[cell] for cell in cells}
