"""Shard the benchmark matrix (and fault campaigns) across cores.

The (engine x benchmark x config) sweep is embarrassingly parallel:
every cell is an independent, deterministic simulation.
:func:`run_matrix_parallel` resolves cache hits in the parent (memory
first, then the disk cache of :mod:`repro.bench.cache`), ships only
the misses to a :class:`~concurrent.futures.ProcessPoolExecutor`, and
falls back to the in-process serial path when one worker (or no pool
at all) is available — results are identical either way, cell by
cell, because the simulator is deterministic.

The pool itself is *hardened* (:func:`run_hardened`): every in-flight
task carries a deadline, a worker that hangs past it is killed with the
pool and its task retried with exponential backoff, a task whose worker
dies repeatedly is quarantined to serial execution in the parent, and a
broken pool (sandboxed semaphores, missing ``/dev/shm``) degrades to
the serial path.  A single wedged or crashing worker therefore slows a
sweep down but can never wedge or kill it.  The fault-injection
campaign runner (:mod:`repro.faults.campaign`) fans its injections
through the same executor.

Workers run each cell with ``use_cache=False``; the parent alone
publishes results to the memory and disk caches, so cache writes are
single-writer regardless of pool size (the disk cache's atomic
rename makes even racing processes safe).
"""

import contextlib
import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.bench import cache as result_cache
from repro.bench import runner
from repro.bench.runner import ENGINES
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import all_configs

_LOG = logging.getLogger("repro.bench.parallel")

#: Per-task wall-clock budget inside the pool; a worker that exceeds it
#: is presumed hung, killed with its pool, and the task retried.
DEFAULT_TIMEOUT = 120.0

#: Failed attempts (death, hang or exception) before a task is
#: quarantined to serial execution in the parent process.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff slept before rebuilding a pool after
#: a death or hang (``backoff * 2**(attempt-1)`` seconds).
DEFAULT_BACKOFF = 0.5


@dataclass
class CellProgress:
    """One progress/metrics event, emitted per completed cell."""

    key: tuple        #: (engine, benchmark, config)
    scale: int
    cached: bool      #: satisfied from the memory/disk cache
    seconds: float    #: wall-clock simulation time (0.0 for hits)
    instructions: int  #: total dynamic instructions of the cell
    completed: int    #: cells finished so far, this sweep
    total: int        #: cells in the sweep
    cache_hits: int   #: cache hits so far, this sweep
    mips: float = 0.0  #: the record's simulated MIPS (survives caching)

    @property
    def throughput(self):
        """Simulated instructions per second (0.0 for cache hits)."""
        return self.instructions / self.seconds if self.seconds else 0.0


def matrix_cells(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
                 configs=None, scales=None):
    """The sweep's cells as (engine, benchmark, config, scale) tuples,
    in the canonical (serial ``run_matrix``) order.  ``configs``
    defaults to the live tagging-scheme registry."""
    configs = all_configs() if configs is None else configs
    cells = []
    for engine in engines:
        for benchmark in benchmarks:
            scale = runner.resolve_scale(benchmark,
                                         (scales or {}).get(benchmark))
            for config in configs:
                cells.append((engine, benchmark, config, scale))
    return cells


def _warm_worker(engines, configs):
    """Pool initializer: assemble the interpreter text for every
    (engine, config) this worker will run, so the one-time per-process
    setup cost is paid up front instead of inside the first cell."""
    for engine in engines:
        if engine == "lua":
            from repro.engines.lua import vm as engine_vm
        else:
            from repro.engines.js import vm as engine_vm
        for config in configs:
            engine_vm.interpreter_program(config)


def _simulate_cell(cell):
    """Worker body: simulate one cell, uncached; returns
    (record, wall_seconds).  Must stay module-level (picklable)."""
    engine, benchmark, config, scale = cell
    start = time.perf_counter()
    record = runner.run_benchmark(engine, benchmark, config, scale=scale,
                                  use_cache=False)
    return record, time.perf_counter() - start


# -- hardened executor -------------------------------------------------------

def _kill_pool(pool):
    """Tear a pool down *now*: cancel queued work, then terminate the
    worker processes (a hung worker never honours a graceful join).

    The process handles must be snapshotted *before* ``shutdown``:
    CPython drops ``_processes`` to ``None`` on shutdown even with
    ``wait=False``, and an unterminated hung worker would keep the
    executor's management thread — and the interpreter's atexit join —
    alive forever."""
    processes = dict(getattr(pool, "_processes", None) or {})
    with contextlib.suppress(Exception):
        pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        with contextlib.suppress(Exception):
            process.terminate()


def run_hardened(fn, tasks, max_workers=None, timeout=DEFAULT_TIMEOUT,
                 retries=DEFAULT_RETRIES, backoff=DEFAULT_BACKOFF,
                 initializer=None, initargs=(), on_result=None):
    """Map ``fn`` over ``tasks`` in a process pool that survives hung,
    crashing and failing workers; returns ``{task: result}``.

    * Each in-flight task has a ``timeout``-second deadline; a task
      still running past it is presumed hung — the pool is killed, the
      hung task charged one attempt, and innocent in-flight tasks are
      requeued free of charge.
    * A dead pool (:class:`BrokenProcessPool`) charges every in-flight
      task one attempt and is rebuilt after ``backoff * 2**(attempt-1)``
      seconds.
    * A task that fails more than ``retries`` times — and any task left
      when no pool can be built at all — runs *serially* in the parent,
      where a genuine deterministic error finally raises with a clean
      traceback instead of being retried forever.

    ``fn`` and every task must be picklable; ``fn`` must be
    deterministic for retries to be sound.  ``on_result(task, result)``
    fires in completion order; the returned dict is unordered.
    """
    tasks = list(tasks)
    results = {}

    def emit(task, value):
        results[task] = value
        if on_result is not None:
            on_result(task, value)

    workers = min(max_workers or os.cpu_count() or 1, len(tasks))
    pending = deque(tasks)
    serial = []
    if workers > 1:
        attempts = {}

        def charge(task, reason):
            """One failed attempt; route to retry or serial quarantine."""
            attempts[task] = attempts.get(task, 0) + 1
            if attempts[task] > retries:
                _LOG.warning("task %r %s; quarantined to serial "
                             "execution after %d attempts",
                             task, reason, attempts[task])
                serial.append(task)
            else:
                _LOG.warning("task %r %s; retrying (attempt %d/%d)",
                             task, reason, attempts[task] + 1, retries + 1)
                pending.append(task)
            return attempts[task]

        pool = None
        in_flight = {}  # future -> (task, deadline)
        try:
            while pending or in_flight:
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(
                            max_workers=workers, initializer=initializer,
                            initargs=initargs)
                    except Exception:
                        # Pool unavailable (sandboxed semaphores,
                        # missing /dev/shm...): everything left runs
                        # serially below.
                        _LOG.warning("process pool unavailable; running "
                                     "%d task(s) serially", len(pending))
                        break
                while pending and len(in_flight) < workers:
                    task = pending.popleft()
                    try:
                        future = pool.submit(fn, task)
                    except Exception:  # pool died between polls
                        pending.appendleft(task)
                        break
                    deadline = time.monotonic() + timeout \
                        if timeout else None
                    in_flight[future] = (task, deadline)
                if not in_flight:
                    if pending:  # submission failed: rebuild the pool
                        _kill_pool(pool)
                        pool = None
                    continue

                interval = None
                if timeout:
                    now = time.monotonic()
                    interval = max(0.01, min(
                        deadline - now
                        for _, deadline in in_flight.values()))
                done, _ = wait(list(in_flight), timeout=interval,
                               return_when=FIRST_COMPLETED)

                broken = False
                worst = 0
                for future in done:
                    task, _deadline = in_flight.pop(future)
                    try:
                        emit(task, future.result())
                    except Exception as err:
                        if isinstance(err, BaseException) and \
                                type(err).__name__ == "BrokenProcessPool" \
                                or "Broken" in type(err).__name__:
                            broken = True
                            worst = max(worst,
                                        charge(task, "lost its worker"))
                        else:
                            worst = max(worst, charge(
                                task, "failed (%s: %s)"
                                % (type(err).__name__, err)))
                if broken:
                    # The whole pool is dead: every other in-flight task
                    # died with it.
                    for task, _deadline in in_flight.values():
                        worst = max(worst,
                                    charge(task, "lost its worker"))
                    in_flight.clear()
                    _kill_pool(pool)
                    pool = None
                elif timeout:
                    now = time.monotonic()
                    overdue = [future for future, (_t, deadline)
                               in in_flight.items()
                               if deadline and now >= deadline]
                    if overdue:
                        for future in overdue:
                            task, _deadline = in_flight.pop(future)
                            worst = max(worst, charge(
                                task,
                                "exceeded the %gs timeout" % timeout))
                        # Innocent in-flight work is requeued without a
                        # charge — only the hung task pays.
                        for task, _deadline in in_flight.values():
                            pending.appendleft(task)
                        in_flight.clear()
                        _kill_pool(pool)
                        pool = None
                if pool is None and (pending or serial) and worst:
                    time.sleep(backoff * (2 ** (worst - 1)))
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # Serial tail: quarantined tasks, everything left when no pool could
    # be built, and the whole workload when only one worker is allowed.
    for task in serial + list(pending):
        emit(task, fn(task))
    return results


def run_matrix_parallel(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
                        configs=None, scales=None, max_workers=None,
                        use_cache=True, progress=None,
                        timeout=DEFAULT_TIMEOUT, retries=DEFAULT_RETRIES,
                        backoff=DEFAULT_BACKOFF):
    """Run the sweep across processes; returns the same
    ``{(engine, benchmark, config): record}`` dict as
    :func:`repro.bench.runner.run_matrix`, in the same order.

    ``max_workers`` defaults to the CPU count; ``1`` (or an
    unavailable pool) degrades gracefully to the serial in-process
    path.  ``progress`` receives one :class:`CellProgress` per
    completed cell, in completion order; the returned dict is ordered
    canonically regardless.  ``timeout``/``retries``/``backoff`` tune
    the hardened executor (see :func:`run_hardened`).
    """
    configs = all_configs() if configs is None else configs
    cells = matrix_cells(engines, benchmarks, configs, scales)
    total = len(cells)
    state = {"completed": 0, "hits": 0}
    results = {}

    def report(cell, record, cached, seconds):
        state["completed"] += 1
        if cached:
            state["hits"] += 1
        if progress is not None:
            progress(CellProgress(
                key=cell[:3], scale=cell[3], cached=cached,
                seconds=seconds,
                instructions=record.counters.instructions,
                completed=state["completed"], total=total,
                cache_hits=state["hits"],
                mips=record.simulated_mips))

    disk = result_cache.active_cache() if use_cache else None
    pending = []
    for cell in cells:
        record = runner.cached_record(*cell) if use_cache else None
        if record is not None:
            results[cell] = record
            report(cell, record, True, 0.0)
        else:
            pending.append(cell)

    # Batch-friendly scheduling (see repro.bench.batch): dispatch misses
    # grouped by (engine, config) so consecutive cells landing on one
    # worker share the assembled interpreter, predecoded program and
    # block/trace tables instead of interleaving six cold pairs.  The
    # returned dict is re-ordered canonically below either way.
    group_order = {}
    for cell in pending:
        group_order.setdefault((cell[0], cell[2]), len(group_order))
    pending.sort(key=lambda cell: group_order[(cell[0], cell[2])])

    def finish(cell, payload):
        record, seconds = payload
        if use_cache:
            runner.publish(record, disk=disk)
        results[cell] = record
        report(cell, record, False, seconds)

    workers = min(max_workers or os.cpu_count() or 1, len(pending))
    if pending and workers > 1:
        run_hardened(_simulate_cell, pending, max_workers=workers,
                     timeout=timeout, retries=retries, backoff=backoff,
                     initializer=_warm_worker,
                     initargs=(tuple(engines), tuple(configs)),
                     on_result=finish)
    else:
        for cell in pending:
            finish(cell, _simulate_cell(cell))

    return {cell[:3]: results[cell] for cell in cells}
