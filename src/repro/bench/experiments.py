"""Regenerate every table and figure of the paper's evaluation.

Each ``figureN``/``tableN`` function aggregates a run matrix (see
:func:`repro.bench.runner.run_matrix`) into the same rows/series the
paper reports, plus a text rendering.  Absolute numbers come from the
timing-approximate simulator, so the claims under test are the *shapes*:
orderings, rough factors and crossovers (see EXPERIMENTS.md).
"""

import math

from repro.bench.report import format_percent, format_table
from repro.bench.runner import ENGINES
from repro.bench.workloads import BENCHMARK_ORDER, WORKLOADS
from repro.engines import BASELINE, TYPED, configs as registry
from repro.hw.synthesis import edp_improvement, synthesize
from repro.uarch.config import table6_rows


def sweep(engines=ENGINES, benchmarks=None, configs=None, scales=None,
          jobs=None, use_cache=True, progress=None):
    """The one sweep behind every figure: cache-aware and sharded.

    Thin front door over :func:`repro.bench.parallel.run_matrix_parallel`
    — resolves disk-cache hits first, shards the misses over ``jobs``
    workers (default: all cores), and returns the canonical
    ``{(engine, benchmark, config): record}`` dict.  Misses are
    scheduled grouped by ``(engine, config)`` (see
    :mod:`repro.bench.batch`), so cells sharing an assembled
    interpreter and its predecoded block/trace tables run back to back.
    With the disk cache configured (see :mod:`repro.bench.cache`),
    concurrent pytest processes and repeat invocations share one sweep.
    """
    from repro.bench.parallel import run_matrix_parallel
    return run_matrix_parallel(
        engines=engines, benchmarks=benchmarks or BENCHMARK_ORDER,
        configs=configs if configs is not None else registry.all_configs(),
        scales=scales, max_workers=jobs,
        use_cache=use_cache, progress=progress)


def matrix_axes(records):
    """The (engines, benchmarks, configs) actually present in a record
    dict, each in canonical order (registry order for configs, with any
    unregistered leftovers appended alphabetically).  Every figure
    derives its axes from this, so subsets — a single benchmark, or a
    sweep over extra registered schemes — render without the figure
    code hard-coding the paper's triple."""
    engines = [e for e in ENGINES if any(k[0] == e for k in records)]
    engines += sorted({k[0] for k in records} - set(engines))
    benchmarks = [b for b in BENCHMARK_ORDER if any(k[1] == b
                                                    for k in records)]
    benchmarks += sorted({k[1] for k in records} - set(benchmarks))
    present = {k[2] for k in records}
    ordered = [c for c in registry.all_configs() if c in present]
    ordered += sorted(present - set(ordered))
    return engines, benchmarks, ordered


def geomean(values):
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# -- Table 1: IoT device platforms (static survey data) -----------------------

TABLE1_PLATFORMS = [
    ("", "SAMA5D3", "Galileo Gen 2", "Arduino Yun", "LaunchPad",
     "ARM mbed"),
    ("Processor", "ARM Cortex-A5", "Intel Quark X1000", "MIPS 24K",
     "ARM Cortex-M4", "ARM Cortex-M0"),
    ("ISA", "ARMv7-A", "x86 (IA32)", "MIPS32", "ARMv7-M", "ARMv6-M"),
    ("Clock", "536MHz", "400MHz", "400MHz", "80MHz", "48MHz"),
    ("L1 Cache", "64KB", "16KB", "0-64KB", "-", "-"),
    ("Main Memory", "256MB DDR2", "256MB DDR3", "64MB DDR2", "32KB SRAM",
     "8KB SRAM"),
    ("Flash", "256MB", "8MB", "16MB", "256KB", "32KB"),
    ("OS", "Linux", "Yocto Linux", "OpenWrt", "TI RTOS", "mbed OS"),
    ("Power", "0.25-1.85W", "2.6-4W", "0.7-1.5W", "75-225mW",
     "100-110mW"),
    ("Price (2016)", "$159", "$64.99", "$74.95", "$12.99", "$10.32"),
]


def table1():
    """IoT platform survey (motivation; static data from the paper)."""
    headers = list(TABLE1_PLATFORMS[0])
    rows = [list(row) for row in TABLE1_PLATFORMS[1:]]
    return format_table(headers, rows, title="Table 1: IoT device platforms")


def table6():
    """Evaluation parameters."""
    return format_table(["parameter", "value"],
                        [list(row) for row in table6_rows()],
                        title="Table 6: Evaluation parameters")


def table7():
    """Benchmark catalogue with paper vs. simulated inputs."""
    rows = [(name, WORKLOADS[name].paper_input,
             WORKLOADS[name].default_scale, WORKLOADS[name].description)
            for name in BENCHMARK_ORDER]
    return format_table(
        ["benchmark", "paper input", "sim scale", "description"], rows,
        title="Table 7: Benchmarks")


# -- Figure 2: bytecode profile -------------------------------------------------

def figure2a(records, engine="lua"):
    """Dynamic bytecode breakdown per benchmark (baseline runs).

    Returns {benchmark: {opcode: fraction}} over the opcode space.
    """
    breakdown = {}
    _, benchmarks, _ = matrix_axes(records)
    for benchmark in benchmarks:
        counters = records[(engine, benchmark, BASELINE)].counters
        total = sum(counters.bytecode_counts.values())
        breakdown[benchmark] = {
            op: count / total
            for op, count in counters.bytecode_counts.items() if count}
    return breakdown


def render_figure2a(breakdown, top=8):
    rows = []
    for benchmark, fractions in breakdown.items():
        ranked = sorted(fractions.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:top]
        rows.append((benchmark,
                     "  ".join("%s %.1f%%" % (op, 100 * frac)
                               for op, frac in ranked)))
    return format_table(["benchmark", "top dynamic bytecodes"], rows,
                        title="Figure 2(a): dynamic bytecode breakdown")


HOT_BYTECODES = ("ADD", "SUB", "MUL", "GETTABLE", "SETTABLE")
HOT_BYTECODES_JS = ("ADD", "SUB", "MUL", "GETELEM", "SETELEM")


def _bucket_matches(bucket, opcode):
    return bucket == "h_%s" % opcode or bucket.startswith("h_%s__" % opcode)


def figure2b(records, engine="lua", benchmarks=None):
    """Instructions per bytecode for the five hot bytecodes, split by
    execution path (int/int, float/float, table fast path, slow).

    Returns {opcode: {"per_bytecode": float, "paths": {bucket: instrs}}}
    aggregated over ``benchmarks`` at baseline.
    """
    hot = HOT_BYTECODES if engine == "lua" else HOT_BYTECODES_JS
    benchmarks = benchmarks or matrix_axes(records)[1]
    result = {}
    totals = {op: [0, 0] for op in hot}  # instrs, executions
    paths = {op: {} for op in hot}
    dispatch_instrs = 0
    total_bytecodes = 0
    for benchmark in benchmarks:
        counters = records[(engine, benchmark, BASELINE)].counters
        dispatch_instrs += counters.bucket_instructions.get("dispatch", 0)
        total_bytecodes += sum(counters.bytecode_counts.values())
        for op in hot:
            totals[op][1] += counters.bytecode_counts.get(op, 0)
            for bucket, instrs in counters.bucket_instructions.items():
                if _bucket_matches(bucket, op):
                    totals[op][0] += instrs
                    paths[op][bucket] = paths[op].get(bucket, 0) + instrs
    dispatch_share = dispatch_instrs / total_bytecodes if total_bytecodes \
        else 0.0
    for op in hot:
        instrs, executions = totals[op]
        per_bytecode = (instrs / executions + dispatch_share) \
            if executions else 0.0
        result[op] = {"per_bytecode": per_bytecode,
                      "executions": executions,
                      "paths": paths[op]}
    return result


def render_figure2b(data):
    rows = []
    for op, entry in data.items():
        path_text = "  ".join(
            "%s:%d" % (bucket.replace("h_%s" % op, "") or "entry", instrs)
            for bucket, instrs in sorted(entry["paths"].items()))
        rows.append((op, "%.1f" % entry["per_bytecode"],
                     entry["executions"], path_text))
    return format_table(
        ["bytecode", "instrs/bytecode", "executions", "path split"],
        rows, title="Figure 2(b): instructions per hot bytecode "
                    "(incl. dispatch share)")


# -- Figures 5-9: the main evaluation --------------------------------------------

def figure5(records):
    """Speedup over baseline per benchmark and config.

    Returns {engine: {benchmark: {config: speedup}}} with a "geomean"
    pseudo-benchmark per engine.
    """
    speedups = {}
    engines, benchmarks, configs = matrix_axes(records)
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            base = records[(engine, benchmark, BASELINE)].counters.cycles
            per_engine[benchmark] = {
                config: base
                / records[(engine, benchmark, config)].counters.cycles
                for config in configs
                if (engine, benchmark, config) in records}
        per_engine["geomean"] = {
            config: geomean(per_engine[b][config]
                            for b in benchmarks if config in per_engine[b])
            for config in configs}
        speedups[engine] = per_engine
    return speedups


def _config_columns(data):
    """Column order for a ``{engine: {row: {config: value}}}`` figure:
    the configs present, in registry order, unregistered ones last."""
    seen = []
    for per_engine in data.values():
        for values in per_engine.values():
            for config in values:
                if config not in seen:
                    seen.append(config)
    ordered = [c for c in registry.all_configs() if c in seen]
    return ordered + [c for c in seen if c not in ordered]


def _render_per_config(title, data, formatter):
    lines = []
    columns = _config_columns(data)
    for engine, per_engine in data.items():
        rows = [(benchmark,) + tuple(
            formatter(values[config]) if config in values else "-"
            for config in columns)
                for benchmark, values in per_engine.items()]
        lines.append(format_table(["benchmark"] + list(columns), rows,
                                  title="%s [%s]" % (title, engine)))
    return "\n\n".join(lines)


def render_figure5(speedups):
    from repro.bench.report import format_bars
    tables = _render_per_config(
        "Figure 5: speedup over baseline", speedups,
        lambda value: "%.3fx" % value)
    charts = []
    for engine, per_engine in speedups.items():
        if not all(TYPED in values for values in per_engine.values()):
            continue
        charts.append(format_bars(
            "Typed Architecture speedup [%s]" % engine,
            {name: values[TYPED] for name, values in per_engine.items()},
            unit="x", baseline=1.0))
    return "\n\n".join([tables] + charts)


GRADUAL_CONFIGS = (BASELINE, registry.ELIDED, registry.CHECKED_LOAD, TYPED)


def figure_gradual(records):
    """The gradual-typing figure: how much of the typed-hardware win
    does *static* guard elision recover in software?

    Four-way comparison per engine/benchmark — ``baseline`` (software
    guards) vs ``elided`` (software guards statically removed where the
    tag-inference proof holds, see :mod:`repro.analysis`) vs ``chklb``
    vs ``typed`` — as speedups over baseline, plus a per-row
    ``recovered``: the fraction of the typed-hardware speedup that the
    software-only elision config achieves,

        recovered = (elided_speedup - 1) / (typed_speedup - 1)

    Returns ``{engine: {benchmark: {"speedups": {config: x},
    "recovered": f|None}}}`` with a "geomean" pseudo-benchmark.  Rows
    missing any of the four configs are dropped; ``recovered`` is None
    when the typed win is too small to divide by (< 0.1%).
    """
    data = {}
    engines, benchmarks, _ = matrix_axes(records)
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            if any((engine, benchmark, c) not in records
                   for c in GRADUAL_CONFIGS):
                continue
            base = records[(engine, benchmark, BASELINE)].counters.cycles
            speedups = {
                c: base / records[(engine, benchmark, c)].counters.cycles
                for c in GRADUAL_CONFIGS}
            per_engine[benchmark] = {
                "speedups": speedups,
                "recovered": _recovered_fraction(speedups)}
        if not per_engine:
            continue
        geo = {c: geomean(row["speedups"][c] for row in per_engine.values())
               for c in GRADUAL_CONFIGS}
        per_engine["geomean"] = {"speedups": geo,
                                 "recovered": _recovered_fraction(geo)}
        data[engine] = per_engine
    return data


def _recovered_fraction(speedups):
    typed_win = speedups[TYPED] - 1.0
    if abs(typed_win) < 1e-3:
        return None
    return (speedups[registry.ELIDED] - 1.0) / typed_win


def render_figure_gradual(data):
    lines = []
    for engine, per_engine in data.items():
        rows = []
        for benchmark, row in per_engine.items():
            recovered = row["recovered"]
            rows.append((benchmark,) + tuple(
                "%.3fx" % row["speedups"][c] for c in GRADUAL_CONFIGS) + (
                format_percent(recovered) if recovered is not None else "-",))
        lines.append(format_table(
            ["benchmark"] + list(GRADUAL_CONFIGS) + ["recovered"],
            rows,
            title="Gradual typing: static elision vs hardware checks "
                  "[%s]" % engine))
    return "\n\n".join(lines)


def figure6(records):
    """Dynamic instruction-count reduction vs. baseline."""
    reductions = {}
    engines, benchmarks, configs = matrix_axes(records)
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            base = records[(engine, benchmark,
                            BASELINE)].counters.instructions
            per_engine[benchmark] = {
                config: 1.0 - records[(engine, benchmark,
                                       config)].counters.instructions / base
                for config in configs
                if (engine, benchmark, config) in records}
        per_engine["mean"] = {
            config: sum(per_engine[b][config] for b in benchmarks
                        if config in per_engine[b]) / len(benchmarks)
            for config in configs}
        reductions[engine] = per_engine
    return reductions


def render_figure6(reductions):
    return _render_per_config(
        "Figure 6: dynamic instruction reduction", reductions,
        lambda value: format_percent(value, signed=True))


def _mpki_figure(records, attr):
    data = {}
    engines, benchmarks, configs = matrix_axes(records)
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            per_engine[benchmark] = {
                config: getattr(records[(engine, benchmark,
                                         config)].counters, attr)
                for config in configs
                if (engine, benchmark, config) in records}
        data[engine] = per_engine
    return data


def figure7(records):
    """Branch misses per kilo-instruction per config."""
    return _mpki_figure(records, "branch_mpki")


def render_figure7(data):
    return _render_per_config("Figure 7: branch MPKI", data,
                              lambda value: "%.2f" % value)


def figure8(records):
    """I-cache misses per kilo-instruction per config."""
    return _mpki_figure(records, "icache_mpki")


def render_figure8(data):
    return _render_per_config("Figure 8: I-cache MPKI", data,
                              lambda value: "%.2f" % value)


def figure9(records):
    """Type check hits/misses per dynamic bytecode for every config
    whose scheme uses hardware checks.

    Returns {engine: {benchmark: {key: rate}}} with the paper's key
    names for the original triple (``typed_hit``/``typed_miss``/
    ``overflow``/``chklb_hit``/``chklb_miss``) and ``<config>_hit`` /
    ``<config>_miss`` (plus ``<config>_overflow`` for typed-family
    schemes) for additionally registered configs.  Each rate is
    normalised to *that run's own* dynamic bytecode count — the configs
    execute different dynamic bytecode streams, so sharing the typed
    run's denominator (the old behaviour) skews the reported rates.
    """
    data = {}
    engines, benchmarks, configs = matrix_axes(records)
    hw_configs = [c for c in configs if registry.is_registered(c)
                  and registry.get_scheme(c).hardware_checks]
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            entry = {}
            for config in hw_configs:
                record = records.get((engine, benchmark, config))
                if record is None:
                    continue
                scheme = registry.get_scheme(config)
                counters = record.counters
                bytecodes = record.total_bytecodes or 1
                if scheme.family == registry.FAMILY_CHECKED:
                    entry["%s_hit" % config] = counters.chk_hits / bytecodes
                    entry["%s_miss" % config] = \
                        counters.chk_misses / bytecodes
                else:
                    entry["%s_hit" % config] = counters.type_hits / bytecodes
                    entry["%s_miss" % config] = \
                        counters.type_misses / bytecodes
                    overflow_key = "overflow" if config == TYPED \
                        else "%s_overflow" % config
                    entry[overflow_key] = \
                        counters.overflow_traps / bytecodes
            per_engine[benchmark] = entry
        data[engine] = per_engine
    return data


def render_figure9(data):
    lines = []
    keys = []
    for per_engine in data.values():
        for values in per_engine.values():
            for key in values:
                if key not in keys:
                    keys.append(key)
    for engine, per_engine in data.items():
        rows = [(benchmark,) + tuple(
            "%.3f" % values[key] if key in values else "-" for key in keys)
                for benchmark, values in per_engine.items()]
        lines.append(format_table(
            ["benchmark"] + list(keys), rows,
            title="Figure 9: type checks per dynamic bytecode [%s]"
                  % engine))
    return "\n\n".join(lines)


def figure9_detail(records, engine="lua"):
    """Per-bytecode type hit/miss rates on the typed machine (aggregated
    over all benchmarks): which of the five retargeted bytecodes pay the
    mispredictions."""
    hits = {}
    misses = {}
    executions = {}
    for benchmark in matrix_axes(records)[1]:
        record = records.get((engine, benchmark, TYPED))
        if record is None:
            continue
        counters = record.counters
        for name, value in counters.bytecode_type_hits.items():
            hits[name] = hits.get(name, 0) + value
        for name, value in counters.bytecode_type_misses.items():
            misses[name] = misses.get(name, 0) + value
        for name, value in counters.bytecode_counts.items():
            executions[name] = executions.get(name, 0) + value
    detail = {}
    for name in sorted(set(hits) | set(misses)):
        count = executions.get(name, 0)
        if not count:
            continue
        detail[name] = {
            "executions": count,
            "hit_rate": hits.get(name, 0) / count,
            "miss_rate": misses.get(name, 0) / count,
        }
    return detail


def render_figure9_detail(detail, engine="lua"):
    rows = [(name, entry["executions"], "%.3f" % entry["hit_rate"],
             "%.3f" % entry["miss_rate"])
            for name, entry in detail.items()]
    return format_table(
        ["bytecode", "executions", "hits/exec", "misses/exec"], rows,
        title="Figure 9 detail: per-bytecode type checks (typed, %s)"
              % engine)


def attribution(records, config=TYPED):
    """Per-benchmark cycle and TRT-miss attribution from cached runs.

    Both inputs are plain counters (``bytecode_flat_cycles`` from the
    timing loop's span accounting, ``trt_miss_keys`` from the
    always-on TRT miss bookkeeping), so this report works off the disk
    cache without re-running anything and agrees exactly with what
    ``repro profile`` would print for each cell.

    Returns {engine: {benchmark: {"hot": [(opcode, cycle_share)...],
    "trt_misses": {key: count}, "telemetry": summary-or-None}}}.
    """
    data = {}
    engines, benchmarks, _ = matrix_axes(records)
    for engine in engines:
        per_engine = {}
        for benchmark in benchmarks:
            record = records.get((engine, benchmark, config))
            if record is None:
                continue
            counters = record.counters
            cycles = counters.cycles or 1
            ranked = sorted(counters.bytecode_flat_cycles.items(),
                            key=lambda kv: (-kv[1], kv[0]))
            per_engine[benchmark] = {
                "hot": [(name, count / cycles) for name, count in ranked],
                "trt_misses": dict(counters.trt_miss_keys),
                "telemetry": record.telemetry,
            }
        data[engine] = per_engine
    return data


def render_attribution(data, config=TYPED, top=4):
    """Text rendering of :func:`attribution` (``repro sweep
    --attribution``)."""
    lines = []
    for engine, per_engine in data.items():
        rows = []
        for benchmark, entry in per_engine.items():
            hot = "  ".join("%s %.1f%%" % (name, 100.0 * share)
                            for name, share in entry["hot"][:top])
            misses = sorted(entry["trt_misses"].items(),
                            key=lambda kv: (-kv[1], kv[0]))
            miss_text = "  ".join("%s x%d" % (key, count)
                                  for key, count in misses[:top]) or "-"
            rows.append((benchmark, hot, miss_text))
        lines.append(format_table(
            ["benchmark", "hot bytecodes (flat cycle share)",
             "TRT misses (opcode/t1/t2)"], rows,
            title="Attribution [%s/%s]" % (engine, config)))
    return "\n\n".join(lines)


def to_json(records):
    """Serialisable snapshot of every figure (for reproducibility
    artifacts and regression diffing)."""
    fig5 = figure5(records)
    return {
        "figure2a": figure2a(records),
        "figure2b": {op: {"per_bytecode": entry["per_bytecode"],
                          "executions": entry["executions"]}
                     for op, entry in figure2b(records).items()},
        "figure5": fig5,
        "figure6": figure6(records),
        "figure7": figure7(records),
        "figure8": figure8(records),
        "figure9": figure9(records),
        "gradual": figure_gradual(records),
        "table8": table8(records)[0],
        "geomeans": {engine: fig5[engine]["geomean"]
                     for engine in fig5},
    }


def table8(records=None, speedups=None):
    """Area/power breakdown and EDP improvement.

    ``speedups`` may carry measured geomean speedups; otherwise they are
    derived from ``records``; with neither, the paper's own geomeans are
    used.
    """
    if speedups is None and records is not None:
        fig5 = figure5(records)
        speedups = {engine: fig5[engine]["geomean"][TYPED]
                    for engine in fig5
                    if TYPED in fig5[engine]["geomean"]}
    if speedups is None:
        speedups = {"lua": 1.099, "js": 1.112}
    baseline = synthesize(typed=False)
    typed = synthesize(typed=True)
    rows = []
    for (name, base_area, base_area_pct, base_power, base_power_pct), \
            (_, typed_area, typed_area_pct, typed_power, typed_power_pct) \
            in zip(baseline.rows(), typed.rows()):
        rows.append((name, "%.3f" % base_area,
                     format_percent(base_area_pct),
                     "%.2f" % base_power, format_percent(base_power_pct),
                     "%.3f" % typed_area, format_percent(typed_area_pct),
                     "%.2f" % typed_power,
                     format_percent(typed_power_pct)))
    power_ratio = typed.total_power / baseline.total_power
    summary = {
        "area_overhead": typed.total_area / baseline.total_area - 1.0,
        "power_overhead": power_ratio - 1.0,
        "edp_improvement": {
            engine: edp_improvement(speedups[engine], power_ratio)
            for engine in speedups},
        "speedups": speedups,
    }
    text = format_table(
        ["module", "area", "area%", "power", "power%",
         "t.area", "t.area%", "t.power", "t.power%"], rows,
        title="Table 8: hardware overhead breakdown (baseline | typed)")
    text += "\narea overhead: %s   power overhead: %s" % (
        format_percent(summary["area_overhead"]),
        format_percent(summary["power_overhead"]))
    for engine, value in summary["edp_improvement"].items():
        text += "\nEDP improvement (%s, speedup %.3fx): %s" % (
            engine, speedups[engine], format_percent(value))
    return summary, text
