"""The paper's 11 benchmarks (Table 7) in MiniLua and MiniJS.

The programs are the Computer Language Benchmarks Game kernels the paper
runs, written in the MiniLua/MiniJS subsets.  Inputs are scaled down
(``scale`` parameter; the FPGA runs 207 billion instructions, a pure-
Python simulator cannot) but the bytecode *mix* of each kernel — which is
what drives every figure — is preserved: the same loops, the same table/
array access patterns, the same float/int balance, the same builtin-call
density.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """One benchmark: sources are templates parameterised by ``scale``."""

    name: str
    description: str
    paper_input: str
    default_scale: int
    lua_template: str
    js_template: str

    def lua_source(self, scale=None):
        return self.lua_template % {"n": scale or self.default_scale}

    def js_source(self, scale=None):
        return self.js_template % {"n": scale or self.default_scale}


_ACKERMANN_LUA = """
local function ack(m, n)
  if m == 0 then return n + 1 end
  if n == 0 then return ack(m - 1, 1) end
  return ack(m - 1, ack(m, n - 1))
end
print(ack(3, %(n)d))
"""

_ACKERMANN_JS = """
function ack(m, n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
print(ack(3, %(n)d));
"""

_BINARY_TREES_LUA = """
local function make(depth)
  if depth == 0 then return {0} end
  local node = {0}
  node[2] = make(depth - 1)
  node[3] = make(depth - 1)
  return node
end
local function check(node)
  if #node == 1 then return 1 end
  return 1 + check(node[2]) + check(node[3])
end
local total = 0
for d = 1, %(n)d do
  local tree = make(d)
  total = total + check(tree)
end
print(total)
"""

_BINARY_TREES_JS = """
function make(depth) {
  if (depth == 0) return [0];
  var node = [0, 0, 0];
  node[1] = make(depth - 1);
  node[2] = make(depth - 1);
  return node;
}
function check(node) {
  if (node.length == 1) return 1;
  return 1 + check(node[1]) + check(node[2]);
}
var total = 0;
for (var d = 1; d <= %(n)d; d++) {
  var tree = make(d);
  total = total + check(tree);
}
print(total);
"""

_FANNKUCH_LUA = """
local function fannkuch(n)
  local p = {}
  local q = {}
  local s = {}
  for i = 1, n do p[i] = i q[i] = i s[i] = i end
  local sign = 1
  local maxflips = 0
  local sum = 0
  repeat
    local q1 = p[1]
    if q1 ~= 1 then
      for i = 2, n do q[i] = p[i] end
      local flips = 1
      repeat
        local qq = q[q1]
        if qq == 1 then
          sum = sum + sign * flips
          if flips > maxflips then maxflips = flips end
          break
        end
        q[q1] = q1
        if q1 >= 4 then
          local i = 2
          local j = q1 - 1
          repeat
            local t = q[i]
            q[i] = q[j]
            q[j] = t
            i = i + 1
            j = j - 1
          until i >= j
        end
        q1 = qq
        flips = flips + 1
      until false
    end
    if sign == 1 then
      local t = p[2]
      p[2] = p[1]
      p[1] = t
      sign = -1
    else
      local t = p[2]
      p[2] = p[3]
      p[3] = t
      sign = 1
      local i = 3
      local done = false
      while i <= n do
        local sx = s[i]
        if sx ~= 1 then
          s[i] = sx - 1
          break
        end
        if i == n then
          print(sum)
          print(maxflips)
          return maxflips
        end
        s[i] = i
        local t0 = p[1]
        for j = 1, i do p[j] = p[j + 1] end
        p[i + 1] = t0
        i = i + 1
      end
    end
  until false
end
fannkuch(%(n)d)
"""

_FANNKUCH_JS = """
function fannkuch(n) {
  // 1-based arrays (slot 0 unused): the flip identity below relies on
  // permutation values doubling as indices, like the Lua original.
  var p = [0];
  var q = [0];
  var s = [0];
  for (var i = 1; i <= n; i++) { p[i] = i; q[i] = i; s[i] = i; }
  var sign = 1;
  var maxflips = 0;
  var sum = 0;
  while (true) {
    var q1 = p[1];
    if (q1 != 1) {
      for (i = 2; i <= n; i++) q[i] = p[i];
      var flips = 1;
      while (true) {
        var qq = q[q1];
        if (qq == 1) {
          sum += sign * flips;
          if (flips > maxflips) maxflips = flips;
          break;
        }
        q[q1] = q1;
        if (q1 >= 4) {
          var lo = 2;
          var hi = q1 - 1;
          while (lo < hi) {
            var t = q[lo]; q[lo] = q[hi]; q[hi] = t;
            lo++; hi--;
          }
        }
        q1 = qq;
        flips++;
      }
    }
    if (sign == 1) {
      var t1 = p[2]; p[2] = p[1]; p[1] = t1;
      sign = -1;
    } else {
      var t2 = p[2]; p[2] = p[3]; p[3] = t2;
      sign = 1;
      for (i = 3; i <= n; i++) {
        var sx = s[i];
        if (sx != 1) { s[i] = sx - 1; break; }
        if (i == n) {
          print(sum);
          print(maxflips);
          return maxflips;
        }
        s[i] = i;
        var t0 = p[1];
        for (var j = 1; j <= i; j++) p[j] = p[j + 1];
        p[i + 1] = t0;
      }
    }
  }
}
fannkuch(%(n)d);
"""

_FIBO_LUA = """
local function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end
print(fib(%(n)d))
"""

_FIBO_JS = """
function fib(n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
print(fib(%(n)d));
"""

_KNUCLEOTIDE_LUA = """
local alpha = "ACGT"
local n = %(n)d
seed = 42
local s = ""
for i = 1, n do
  seed = (seed * 3877 + 29573) %% 139968
  local idx = seed // 34992 + 1
  s = s .. string.sub(alpha, idx, idx)
end
local counts = {}
for i = 1, n - 1 do
  local mer = string.sub(s, i, i + 1)
  counts[mer] = (counts[mer] or 0) + 1
end
for a = 1, 4 do
  for b = 1, 4 do
    local mer = string.sub(alpha, a, a) .. string.sub(alpha, b, b)
    print(mer .. " " .. (counts[mer] or 0))
  end
end
"""

_KNUCLEOTIDE_JS = """
var alpha = "ACGT";
var n = %(n)d;
var seed = 42;
var s = "";
for (var i = 0; i < n; i++) {
  seed = (seed * 3877 + 29573) %% 139968;
  var idx = Math.floor(seed / 34992);
  s = s + alpha[idx];
}
var counts = {};
for (i = 0; i < n - 1; i++) {
  var mer = substring(s, i, i + 2);
  var old = counts[mer];
  if (old == undefined) old = 0;
  counts[mer] = old + 1;
}
for (var a = 0; a < 4; a++) {
  for (var b = 0; b < 4; b++) {
    var key = alpha[a] + alpha[b];
    var c = counts[key];
    if (c == undefined) c = 0;
    print(key + " " + c);
  }
}
"""

_MANDELBROT_LUA = """
local size = %(n)d
local sum = 0
local byte_acc = 0
local bit_num = 0
for y = 0, size - 1 do
  local ci = 2.0 * y / size - 1.0
  for x = 0, size - 1 do
    local cr = 2.0 * x / size - 1.5
    local zr = 0.0
    local zi = 0.0
    local i = 0
    local inside = 1
    while i < 50 do
      local tr = zr * zr - zi * zi + cr
      zi = 2.0 * zr * zi + ci
      zr = tr
      if zr * zr + zi * zi > 4.0 then
        inside = 0
        break
      end
      i = i + 1
    end
    byte_acc = byte_acc * 2 + inside
    bit_num = bit_num + 1
    if bit_num == 8 then
      io.write(byte_acc)
      io.write(" ")
      sum = sum + byte_acc
      byte_acc = 0
      bit_num = 0
    end
  end
  while bit_num > 0 and bit_num < 8 do
    byte_acc = byte_acc * 2
    bit_num = bit_num + 1
  end
  if bit_num == 8 then
    io.write(byte_acc)
    io.write(" ")
    sum = sum + byte_acc
    byte_acc = 0
    bit_num = 0
  end
end
print("")
print(sum)
"""

_MANDELBROT_JS = """
var size = %(n)d;
var sum = 0;
var byte_acc = 0;
var bit_num = 0;
for (var y = 0; y < size; y++) {
  var ci = 2.0 * y / size - 1.0;
  for (var x = 0; x < size; x++) {
    var cr = 2.0 * x / size - 1.5;
    var zr = 0.0;
    var zi = 0.0;
    var inside = 1;
    for (var i = 0; i < 50; i++) {
      var tr = zr * zr - zi * zi + cr;
      zi = 2.0 * zr * zi + ci;
      zr = tr;
      if (zr * zr + zi * zi > 4.0) { inside = 0; break; }
    }
    byte_acc = byte_acc * 2 + inside;
    bit_num = bit_num + 1;
    if (bit_num == 8) {
      write(byte_acc); write(" ");
      sum = sum + byte_acc;
      byte_acc = 0;
      bit_num = 0;
    }
  }
  while (bit_num > 0 && bit_num < 8) {
    byte_acc = byte_acc * 2;
    bit_num = bit_num + 1;
  }
  if (bit_num == 8) {
    write(byte_acc); write(" ");
    sum = sum + byte_acc;
    byte_acc = 0;
    bit_num = 0;
  }
}
print("");
print(sum);
"""

_NBODY_LUA = """
PI = 3.141592653589793
SOLAR_MASS = 4.0 * PI * PI
DAYS_PER_YEAR = 365.24
local function body(x, y, z, vx, vy, vz, mass)
  local b = {}
  b.x = x b.y = y b.z = z
  b.vx = vx b.vy = vy b.vz = vz
  b.mass = mass
  return b
end
bodies = {}
bodies[1] = body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS)
bodies[2] = body(4.84143144246472090, -1.16032004402742839,
  -0.103622044471123109, 0.00166007664274403694 * DAYS_PER_YEAR,
  0.00769901118419740425 * DAYS_PER_YEAR,
  -0.0000690460016972063023 * DAYS_PER_YEAR,
  0.000954791938424326609 * SOLAR_MASS)
bodies[3] = body(8.34336671824457987, 4.12479856412430479,
  -0.403523417114321381, -0.00276742510726862411 * DAYS_PER_YEAR,
  0.00499852801234917238 * DAYS_PER_YEAR,
  0.0000230417297573763929 * DAYS_PER_YEAR,
  0.000285885980666130812 * SOLAR_MASS)
bodies[4] = body(12.8943695621391310, -15.1111514016986312,
  -0.223307578892655734, 0.00296460137564761618 * DAYS_PER_YEAR,
  0.00237847173959480950 * DAYS_PER_YEAR,
  -0.0000296589568540237556 * DAYS_PER_YEAR,
  0.0000436624404335156298 * SOLAR_MASS)
bodies[5] = body(15.3796971148509165, -25.9193146099879641,
  0.179258772950371181, 0.00268067772490389322 * DAYS_PER_YEAR,
  0.00162824170038242295 * DAYS_PER_YEAR,
  -0.0000951592254519715870 * DAYS_PER_YEAR,
  0.0000515138902046611451 * SOLAR_MASS)
nbody = 5
-- offset momentum
local px = 0.0
local py = 0.0
local pz = 0.0
for i = 1, nbody do
  local b = bodies[i]
  px = px + b.vx * b.mass
  py = py + b.vy * b.mass
  pz = pz + b.vz * b.mass
end
bodies[1].vx = -px / SOLAR_MASS
bodies[1].vy = -py / SOLAR_MASS
bodies[1].vz = -pz / SOLAR_MASS
local function energy()
  local e = 0.0
  for i = 1, nbody do
    local bi = bodies[i]
    e = e + 0.5 * bi.mass *
      (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz)
    for j = i + 1, nbody do
      local bj = bodies[j]
      local dx = bi.x - bj.x
      local dy = bi.y - bj.y
      local dz = bi.z - bj.z
      e = e - bi.mass * bj.mass /
        math.sqrt(dx * dx + dy * dy + dz * dz)
    end
  end
  return e
end
local function advance(dt)
  for i = 1, nbody do
    local bi = bodies[i]
    for j = i + 1, nbody do
      local bj = bodies[j]
      local dx = bi.x - bj.x
      local dy = bi.y - bj.y
      local dz = bi.z - bj.z
      local d2 = dx * dx + dy * dy + dz * dz
      local mag = dt / (d2 * math.sqrt(d2))
      bi.vx = bi.vx - dx * bj.mass * mag
      bi.vy = bi.vy - dy * bj.mass * mag
      bi.vz = bi.vz - dz * bj.mass * mag
      bj.vx = bj.vx + dx * bi.mass * mag
      bj.vy = bj.vy + dy * bi.mass * mag
      bj.vz = bj.vz + dz * bi.mass * mag
    end
  end
  for i = 1, nbody do
    local b = bodies[i]
    b.x = b.x + dt * b.vx
    b.y = b.y + dt * b.vy
    b.z = b.z + dt * b.vz
  end
end
print(energy())
for step = 1, %(n)d do advance(0.01) end
print(energy())
"""

_NBODY_JS = """
var PI = 3.141592653589793;
var SOLAR_MASS = 4.0 * PI * PI;
var DAYS_PER_YEAR = 365.24;
function body(x, y, z, vx, vy, vz, mass) {
  return {x: x, y: y, z: z, vx: vx, vy: vy, vz: vz, mass: mass};
}
var bodies = [
  body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS),
  body(4.84143144246472090, -1.16032004402742839,
    -0.103622044471123109, 0.00166007664274403694 * DAYS_PER_YEAR,
    0.00769901118419740425 * DAYS_PER_YEAR,
    -0.0000690460016972063023 * DAYS_PER_YEAR,
    0.000954791938424326609 * SOLAR_MASS),
  body(8.34336671824457987, 4.12479856412430479,
    -0.403523417114321381, -0.00276742510726862411 * DAYS_PER_YEAR,
    0.00499852801234917238 * DAYS_PER_YEAR,
    0.0000230417297573763929 * DAYS_PER_YEAR,
    0.000285885980666130812 * SOLAR_MASS),
  body(12.8943695621391310, -15.1111514016986312,
    -0.223307578892655734, 0.00296460137564761618 * DAYS_PER_YEAR,
    0.00237847173959480950 * DAYS_PER_YEAR,
    -0.0000296589568540237556 * DAYS_PER_YEAR,
    0.0000436624404335156298 * SOLAR_MASS),
  body(15.3796971148509165, -25.9193146099879641,
    0.179258772950371181, 0.00268067772490389322 * DAYS_PER_YEAR,
    0.00162824170038242295 * DAYS_PER_YEAR,
    -0.0000951592254519715870 * DAYS_PER_YEAR,
    0.0000515138902046611451 * SOLAR_MASS)];
var nbody = 5;
var px = 0.0; var py = 0.0; var pz = 0.0;
for (var i = 0; i < nbody; i++) {
  var b = bodies[i];
  px += b.vx * b.mass; py += b.vy * b.mass; pz += b.vz * b.mass;
}
bodies[0].vx = -px / SOLAR_MASS;
bodies[0].vy = -py / SOLAR_MASS;
bodies[0].vz = -pz / SOLAR_MASS;
function energy() {
  var e = 0.0;
  for (var i = 0; i < nbody; i++) {
    var bi = bodies[i];
    e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
    for (var j = i + 1; j < nbody; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      e -= bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
  return e;
}
function advance(dt) {
  for (var i = 0; i < nbody; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < nbody; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx -= dx * bj.mass * mag;
      bi.vy -= dy * bj.mass * mag;
      bi.vz -= dz * bj.mass * mag;
      bj.vx += dx * bi.mass * mag;
      bj.vy += dy * bi.mass * mag;
      bj.vz += dz * bi.mass * mag;
    }
  }
  for (i = 0; i < nbody; i++) {
    var b = bodies[i];
    b.x += dt * b.vx;
    b.y += dt * b.vy;
    b.z += dt * b.vz;
  }
}
print(energy());
for (var step = 0; step < %(n)d; step++) advance(0.01);
print(energy());
"""

_NSIEVE_LUA = """
local n = %(n)d
local flags = {}
flags[1] = false
for i = 2, n do flags[i] = true end
local count = 0
for i = 2, n do
  if flags[i] then
    count = count + 1
    local k = i + i
    while k <= n do
      flags[k] = false
      k = k + i
    end
  end
end
print(count)
"""

_NSIEVE_JS = """
var n = %(n)d;
var flags = [];
for (var i = 0; i <= n; i++) flags[i] = true;
var count = 0;
for (i = 2; i <= n; i++) {
  if (flags[i]) {
    count = count + 1;
    for (var k = i + i; k <= n; k += i) flags[k] = false;
  }
}
print(count);
"""

_PIDIGITS_LUA = """
local ndigits = %(n)d
local len = ndigits * 10 // 3 + 1
local a = {}
for i = 1, len do a[i] = 2 end
local nines = 0
local predigit = 0
local first = true
for j = 1, ndigits do
  local q = 0
  for i = len, 1, -1 do
    local x = 10 * a[i] + q * i
    a[i] = x %% (2 * i - 1)
    q = x // (2 * i - 1)
  end
  a[1] = q %% 10
  q = q // 10
  if q == 9 then
    nines = nines + 1
  elseif q == 10 then
    io.write(predigit + 1)
    for k = 1, nines do io.write(0) end
    predigit = 0
    nines = 0
  else
    if first then
      first = false
    else
      io.write(predigit)
    end
    predigit = q
    for k = 1, nines do io.write(9) end
    nines = 0
  end
end
io.write(predigit)
print("")
"""

_PIDIGITS_JS = """
var ndigits = %(n)d;
var len = Math.floor(ndigits * 10 / 3) + 1;
var a = [];
for (var i = 0; i < len; i++) a[i] = 2;
var nines = 0;
var predigit = 0;
var first = true;
for (var j = 0; j < ndigits; j++) {
  var q = 0;
  for (i = len - 1; i >= 0; i--) {
    var x = 10 * a[i] + q * (i + 1);
    a[i] = x %% (2 * i + 1);
    q = Math.floor(x / (2 * i + 1));
  }
  a[0] = q %% 10;
  q = Math.floor(q / 10);
  if (q == 9) {
    nines = nines + 1;
  } else if (q == 10) {
    write(predigit + 1);
    for (var k = 0; k < nines; k++) write(0);
    predigit = 0;
    nines = 0;
  } else {
    if (first) { first = false; } else { write(predigit); }
    predigit = q;
    for (k = 0; k < nines; k++) write(9);
    nines = 0;
  }
}
write(predigit);
print("");
"""

_RANDOM_LUA = """
IM = 139968
IA = 3877
IC = 29573
seed = 42
local function gen_random(max)
  seed = (seed * IA + IC) %% IM
  return max * seed / IM
end
local r = 0.0
for i = 1, %(n)d do
  r = gen_random(100.0)
end
print(r)
"""

_RANDOM_JS = """
var IM = 139968;
var IA = 3877;
var IC = 29573;
var seed = 42;
function gen_random(max) {
  seed = (seed * IA + IC) %% IM;
  return max * seed / IM;
}
var r = 0.0;
for (var i = 0; i < %(n)d; i++) {
  r = gen_random(100.0);
}
print(r);
"""

_SPECTRAL_LUA = """
local function A(i, j)
  return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)
end
local function Av(x, y, n)
  for i = 0, n - 1 do
    local a = 0.0
    for j = 0, n - 1 do
      a = a + x[j + 1] * A(i, j)
    end
    y[i + 1] = a
  end
end
local function Atv(x, y, n)
  for i = 0, n - 1 do
    local a = 0.0
    for j = 0, n - 1 do
      a = a + x[j + 1] * A(j, i)
    end
    y[i + 1] = a
  end
end
local n = %(n)d
local u = {}
local v = {}
local t = {}
for i = 1, n do
  u[i] = 1.0
  v[i] = 0.0
  t[i] = 0.0
end
for i = 1, 10 do
  Av(u, t, n)
  Atv(t, v, n)
  Av(v, t, n)
  Atv(t, u, n)
end
local vBv = 0.0
local vv = 0.0
for i = 1, n do
  vBv = vBv + u[i] * v[i]
  vv = vv + v[i] * v[i]
end
print(math.sqrt(vBv / vv))
"""

_SPECTRAL_JS = """
function A(i, j) {
  return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
function Av(x, y, n) {
  for (var i = 0; i < n; i++) {
    var a = 0.0;
    for (var j = 0; j < n; j++) a += x[j] * A(i, j);
    y[i] = a;
  }
}
function Atv(x, y, n) {
  for (var i = 0; i < n; i++) {
    var a = 0.0;
    for (var j = 0; j < n; j++) a += x[j] * A(j, i);
    y[i] = a;
  }
}
var n = %(n)d;
var u = [];
var v = [];
var t = [];
for (var i = 0; i < n; i++) { u[i] = 1.0; v[i] = 0.0; t[i] = 0.0; }
for (i = 0; i < 10; i++) {
  Av(u, t, n);
  Atv(t, v, n);
  Av(v, t, n);
  Atv(t, u, n);
}
var vBv = 0.0;
var vv = 0.0;
for (i = 0; i < n; i++) {
  vBv += u[i] * v[i];
  vv += v[i] * v[i];
}
print(Math.sqrt(vBv / vv));
"""


WORKLOADS = {
    "ackermann": Workload(
        "ackermann", "Ackermann function benchmark", "7", 3,
        _ACKERMANN_LUA, _ACKERMANN_JS),
    "binary-trees": Workload(
        "binary-trees", "Allocate and walk many binary trees", "12", 7,
        _BINARY_TREES_LUA, _BINARY_TREES_JS),
    "fannkuch-redux": Workload(
        "fannkuch-redux", "Indexed access to tiny integer sequences", "9",
        5, _FANNKUCH_LUA, _FANNKUCH_JS),
    "fibo": Workload(
        "fibo", "Recursive Fibonacci", "32", 16, _FIBO_LUA, _FIBO_JS),
    "k-nucleotide": Workload(
        "k-nucleotide", "Hash-table update keyed by k-nucleotide strings",
        "250,000", 150, _KNUCLEOTIDE_LUA, _KNUCLEOTIDE_JS),
    "mandelbrot": Workload(
        "mandelbrot", "Mandelbrot set bitmap", "250", 10,
        _MANDELBROT_LUA, _MANDELBROT_JS),
    "n-body": Workload(
        "n-body", "Double-precision N-body simulation", "500,000", 25,
        _NBODY_LUA, _NBODY_JS),
    "n-sieve": Workload(
        "n-sieve", "Sieve of Eratosthenes prime count", "7", 1000,
        _NSIEVE_LUA, _NSIEVE_JS),
    "pidigits": Workload(
        "pidigits", "Streaming spigot pi digits", "500", 15,
        _PIDIGITS_LUA, _PIDIGITS_JS),
    "random": Workload(
        "random", "Linear-congruential random numbers", "300,000", 1500,
        _RANDOM_LUA, _RANDOM_JS),
    "spectral-norm": Workload(
        "spectral-norm", "Matrix eigenvalue by the power method", "500", 6,
        _SPECTRAL_LUA, _SPECTRAL_JS),
}

BENCHMARK_ORDER = tuple(sorted(WORKLOADS))


def workload(name):
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown benchmark %r (have: %s)"
                       % (name, ", ".join(BENCHMARK_ORDER))) from None
