"""Shared-predecode batch execution of sweep cells.

A sweep cell's host cost has two parts: the simulation itself and the
per-process setup it rides on — assembling the guest interpreter for
its ``(engine, config)`` pair, predecoding it into a
:class:`~repro.sim.blocks.BlockTable`, and (for the trace engine)
profiling and compiling superblock traces.  Run cells one-per-process
and every cell pays all of it; run them *batched* in one process,
grouped by ``(engine, config)``, and the setup is paid exactly once
per pair while every subsequent cell starts hot.

:func:`run_batch` is that executor.  It groups the requested cells,
runs each group back to back through :func:`repro.bench.runner`
(uncached, attribution-free — the fast path), and audits the sharing
it promises:

* each ``(engine, config)`` pair **assembles at most once per
  process** — asserted against the engine modules'
  ``assembly_count`` counters (a pair already warmed earlier in the
  process assembles zero times);
* block tables are shared across the group's cells (one ``compiled``
  pool per pair);
* trace tables are per guest workload by design (see
  :func:`repro.sim.traces.trace_table`) but persist across repeated
  runs of the same cell, so a batch re-running a cell reuses its
  compiled traces for free.

The report is a plain dict (see :func:`run_batch`) so callers — the
CLI, ``tools/perfbench.py``, tests — can assert on it directly.
"""

from collections import OrderedDict
import time

from repro.bench import runner
from repro.bench.runner import ENGINES
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import all_configs


class BatchInvariantError(AssertionError):
    """A batch group violated the shared-predecode contract (an
    ``(engine, config)`` pair assembled its interpreter more than once
    in one process)."""


def _engine_vm(engine):
    """The engine's ``vm`` module (owner of the interpreter cache and
    the ``assembly_count`` audit counter)."""
    if engine == "lua":
        from repro.engines.lua import vm
    elif engine == "js":
        from repro.engines.js import vm
    else:
        raise ValueError("unknown engine %r" % (engine,))
    return vm


def group_cells(cells):
    """Group ``(engine, benchmark, config, scale)`` cells by their
    shared setup: returns an ordered
    ``{(engine, config): [(benchmark, scale), ...]}`` mapping, group
    order following each pair's first appearance and cell order
    preserved within a group."""
    groups = OrderedDict()
    for engine, benchmark, config, scale in cells:
        groups.setdefault((engine, config), []).append((benchmark, scale))
    return groups


def batch_cells(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
                configs=None, scales=None):
    """The sweep's cells ordered for batching: ``(engine, config)``
    major, so :func:`group_cells` yields one contiguous group per pair.
    (The canonical sweep order of ``parallel.matrix_cells`` is
    benchmark-major, which interleaves pairs.)"""
    configs = all_configs() if configs is None else configs
    cells = []
    for engine in engines:
        for config in configs:
            for benchmark in benchmarks:
                scale = runner.resolve_scale(benchmark,
                                             (scales or {}).get(benchmark))
                cells.append((engine, benchmark, config, scale))
    return cells


def run_batch(cells=None, use_blocks=True, use_traces=True,
              progress=None, check=True):
    """Run ``cells`` grouped by ``(engine, config)`` in this process;
    returns ``(records, report)``.

    ``records`` is ``{(engine, benchmark, config, scale): RunRecord}``
    (uncached, attribution-free runs).  ``report`` audits the sharing:

    ``groups``
        One entry per ``(engine, config)`` pair:  ``engine``,
        ``config``, ``cells`` run, ``seconds``, ``instructions``,
        ``assemblies`` (interpreter assemblies this group actually
        performed: 1 cold, 0 warm), ``blocks_compiled`` (cumulative
        block pool for the pair), and ``traces``/``trace_retired``
        (cumulative trace-engine stats across the pair's workloads).
    ``assemblies_total`` / ``pairs``
        Process-wide totals; with ``check=True`` (default) a group
        assembling more than once raises :class:`BatchInvariantError`.

    ``progress`` receives ``(cell, record)`` per completed cell.
    """
    if cells is None:
        cells = batch_cells()
    groups = group_cells(cells)
    records = {}
    report_groups = []
    assemblies_total = 0
    for (engine, config), members in groups.items():
        vm = _engine_vm(engine)
        before = vm.assembly_count
        start = time.perf_counter()
        instructions = 0
        for benchmark, scale in members:
            record = runner.run_benchmark(
                engine, benchmark, config, scale=scale, use_cache=False,
                use_blocks=use_blocks, use_traces=use_traces,
                attribute=False)
            records[(engine, benchmark, config, scale)] = record
            instructions += record.counters.instructions
            if progress is not None:
                progress((engine, benchmark, config, scale), record)
        seconds = time.perf_counter() - start
        assemblies = vm.assembly_count - before
        if check and assemblies > 1:
            raise BatchInvariantError(
                "(%s, %s) assembled its interpreter %d times in one "
                "batch group; the shared-predecode contract is at most "
                "once per process" % (engine, config, assemblies))
        assemblies_total += assemblies
        report_groups.append({
            "engine": engine,
            "config": config,
            "cells": len(members),
            "seconds": seconds,
            "instructions": instructions,
            "assemblies": assemblies,
            **_table_stats(vm, engine, config),
        })
    report = {
        "groups": report_groups,
        "pairs": len(report_groups),
        "cells": len(cells),
        "assemblies_total": assemblies_total,
        "use_blocks": use_blocks,
        "use_traces": use_traces,
    }
    return records, report


def _table_stats(vm, engine, config):
    """Cumulative predecode/compile pools for one ``(engine, config)``
    pair: the shared block table and every per-workload trace table
    living on the pair's interpreter program.  Benchmark runs use the
    default Table 6 machine, so the tables sit under
    :data:`~repro.uarch.config.DEFAULT_CONFIG`."""
    from repro.sim import blocks, traces
    from repro.uarch.config import DEFAULT_CONFIG

    program, _attribution = vm.interpreter_program(config)
    stats = {"blocks_compiled": 0, "traces": 0, "trace_retired": 0}
    table = blocks._TABLES.get(program, {}).get(DEFAULT_CONFIG)
    if table is not None:
        stats["blocks_compiled"] = table.compiled
    for (table_config, _workload), trace_tbl in \
            traces._TABLES.get(program, {}).items():
        if table_config is DEFAULT_CONFIG:
            stats["traces"] += trace_tbl.traces
            stats["trace_retired"] += trace_tbl.retired
    return stats


def format_report(report):
    """Human-readable batch report (one line per group)."""
    lines = ["batch: %d cell(s) in %d group(s), %d interpreter "
             "assembl%s" % (report["cells"], report["pairs"],
                            report["assemblies_total"],
                            "y" if report["assemblies_total"] == 1
                            else "ies")]
    for group in report["groups"]:
        lines.append(
            "  %-4s %-14s %2d cells %7.2fs %9d instrs "
            "assemblies=%d blocks=%d traces=%d retired=%d"
            % (group["engine"], group["config"], group["cells"],
               group["seconds"], group["instructions"],
               group["assemblies"], group["blocks_compiled"],
               group["traces"], group["trace_retired"]))
    return "\n".join(lines)
