"""Content-addressed on-disk cache for benchmark :class:`RunRecord`\\ s.

The full (engine x benchmark x config) sweep behind the Section-7
figures is expensive (~50M simulated instructions) but perfectly
reproducible: the simulator is deterministic, so a run is a pure
function of the source tree and the cell key.  This module persists
each cell as JSON under

    <root>/<tree_hash>/<engine>-<benchmark>-<config>-s<scale>.json

where ``tree_hash`` digests every ``.py`` file of the ``repro``
package.  Any source change therefore starts from an empty cache —
no staleness heuristics, no manual invalidation; old tree directories
are simply dead weight (see :meth:`ResultCache.prune`).

The process-wide cache is opt-in: :func:`configure` (or the
``REPRO_CACHE_DIR`` environment variable) enables it, after which
``repro.bench.runner.run_benchmark`` transparently reads and writes
it.  ``benchmarks/conftest.py`` and the ``sweep`` CLI configure it by
default so repeat runs of the figure suite are near-instant.
"""

import contextlib
import hashlib
import json
import logging
import os
import pathlib
import tempfile

from repro.schema import SCHEMA_VERSION
from repro.uarch.counters import Counters

_LOG = logging.getLogger("repro.bench.cache")

#: Subdirectory of the cache root where damaged entries are parked for
#: post-mortem instead of being silently discarded.
CORRUPT_DIR = "corrupt"

#: Environment variable that both overrides the default cache root and
#: enables the process-wide cache when set.
CACHE_ENV = "REPRO_CACHE_DIR"

#: The on-disk payload version — an alias of the package-wide
#: :data:`repro.schema.SCHEMA_VERSION` (one bump invalidates every
#: versioned artefact at once; see docs/API.md for the policy and
#: :mod:`repro.schema` for the version history).  A mismatch is
#: treated as a miss and the entry quarantined.
FORMAT_VERSION = SCHEMA_VERSION

_TREE_HASHES = {}


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/typedarch``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "typedarch"


def source_tree_hash(root=None):
    """Digest of every ``.py`` file under ``root`` (default: the
    installed ``repro`` package) — the cache's invalidation key.

    Memoised per root: the tree is assumed immutable for the life of
    the process, matching how the simulator itself is loaded once.
    """
    if root is None:
        import repro
        root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(root).resolve()
    cached = _TREE_HASHES.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    tree = digest.hexdigest()[:20]
    _TREE_HASHES[root] = tree
    return tree


class ResultCache:
    """One cache root; counts its own hits/misses/stores.

    ``tree_hash`` may be overridden (tests use this to simulate a
    source change without editing files).
    """

    def __init__(self, root=None, tree_hash=None):
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.tree_hash = tree_hash or source_tree_hash()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    @property
    def tree_dir(self):
        return self.root / self.tree_hash

    def path_for(self, engine, benchmark, config, scale):
        return self.tree_dir / ("%s-%s-%s-s%d.json"
                                % (engine, benchmark, config, scale))

    def __len__(self):
        try:
            return sum(1 for _ in self.tree_dir.glob("*.json"))
        except OSError:
            return 0

    def load(self, engine, benchmark, config, scale):
        """Return the cached :class:`RunRecord`, or ``None`` on a miss.

        An *absent* file is a plain miss.  A file that exists but is
        truncated, corrupt or version-mismatched is quarantined to
        ``<root>/corrupt/`` (with a one-line warning naming the path)
        and then treated as a miss — the damaged payload stays
        available for post-mortem and can never be served again.
        """
        path = self.path_for(engine, benchmark, config, scale)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as err:
            self.quarantine(path, "unreadable: %s" % err)
            self.misses += 1
            return None
        except UnicodeDecodeError as err:
            self.quarantine(path, "not valid UTF-8 (%s)" % err)
            self.misses += 1
            return None
        record, reason = self._decode(text, engine, benchmark, config,
                                      scale)
        if record is None:
            self.quarantine(path, reason)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def _decode(self, text, engine, benchmark, config, scale):
        """Parse one cached payload; returns ``(record, None)`` or
        ``(None, reason)`` when the payload is damaged or stale."""
        from repro.bench.runner import RunRecord
        try:
            payload = json.loads(text)
        except ValueError as err:
            return None, "not valid JSON (%s)" % err
        if not isinstance(payload, dict):
            return None, "payload is not an object"
        if payload.get("version") != FORMAT_VERSION:
            return None, "format version %r != %d" \
                % (payload.get("version"), FORMAT_VERSION)
        try:
            record = RunRecord(
                engine=engine, benchmark=benchmark, config=config,
                scale=scale, output=payload["output"],
                counters=Counters.from_dict(payload["counters"]),
                telemetry=payload.get("telemetry"),
                wall_seconds=payload.get("wall_seconds", 0.0),
                simulated_mips=payload.get("simulated_mips", 0.0))
        except (KeyError, TypeError, ValueError) as err:
            return None, "truncated record (%s: %s)" \
                % (type(err).__name__, err)
        return record, None

    def quarantine(self, path, reason):
        """Move a damaged entry to ``<root>/corrupt/`` and warn once.

        Returns the quarantine destination, or ``None`` when the move
        itself failed (the entry is then left in place; the caller has
        already decided to treat it as a miss either way).
        """
        dest_dir = self.root / CORRUPT_DIR
        dest = dest_dir / ("%s-%s" % (path.parent.name, path.name))
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            _LOG.warning("cache entry %s is damaged (%s) and could not "
                         "be quarantined", path, reason)
            return None
        self.quarantined += 1
        _LOG.warning("quarantined damaged cache entry %s -> %s (%s)",
                     path, dest, reason)
        return dest

    def verify(self, quarantine=True):
        """Scan every entry of every tree; returns a report dict.

        ``valid`` counts entries of the *current* tree that decode
        cleanly; ``stale`` counts well-formed entries of other source
        trees (dead weight, see :meth:`prune`); ``damaged`` lists
        ``(path, reason)`` for undecodable payloads, which are moved to
        ``<root>/corrupt/`` unless ``quarantine=False``.
        """
        report = {"scanned": 0, "valid": 0, "stale": 0, "damaged": [],
                  "quarantined": 0}
        if not self.root.is_dir():
            return report
        for tree_dir in sorted(self.root.iterdir()):
            if not tree_dir.is_dir() or tree_dir.name == CORRUPT_DIR:
                continue
            current = tree_dir.name == self.tree_hash
            for path in sorted(tree_dir.glob("*.json")):
                report["scanned"] += 1
                try:
                    name = path.stem  # engine-benchmark-config-sN
                    engine, benchmark, config, scale = \
                        self._parse_name(name)
                    record, reason = self._decode(
                        path.read_text(), engine, benchmark, config,
                        scale)
                except (OSError, ValueError) as err:
                    record, reason = None, str(err)
                if record is not None:
                    report["valid" if current else "stale"] += 1
                    continue
                report["damaged"].append((str(path), reason))
                if quarantine and self.quarantine(path, reason):
                    report["quarantined"] += 1
        return report

    @staticmethod
    def _parse_name(name):
        """Split ``engine-benchmark-config-sN`` (benchmark may itself
        contain dashes, engine and config never do)."""
        head, _, scale = name.rpartition("-s")
        engine, _, rest = head.partition("-")
        benchmark, _, config = rest.rpartition("-")
        if not (engine and benchmark and config and scale.isdigit()):
            raise ValueError("unparseable cache file name %r" % name)
        return engine, benchmark, config, int(scale)

    def store(self, record):
        """Persist one record atomically (write-to-temp + rename, so a
        concurrent reader or a crashed worker never sees a torn file)."""
        path = self.path_for(record.engine, record.benchmark,
                             record.config, record.scale)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": FORMAT_VERSION,
            "tree": self.tree_hash,
            "engine": record.engine,
            "benchmark": record.benchmark,
            "config": record.config,
            "scale": record.scale,
            "output": record.output,
            "counters": record.counters.as_dict(),
            "telemetry": record.telemetry,
            "wall_seconds": record.wall_seconds,
            "simulated_mips": record.simulated_mips,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1

    def clear(self):
        """Delete every record of the current tree."""
        for path in self.tree_dir.glob("*.json"):
            with contextlib.suppress(OSError):
                path.unlink()

    def prune(self):
        """Delete record directories left behind by older source trees
        (the quarantine directory is kept — it is post-mortem evidence,
        not a result tree)."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name != self.tree_hash \
                    and entry.name != CORRUPT_DIR:
                for path in entry.glob("*"):
                    with contextlib.suppress(OSError):
                        path.unlink()
                with contextlib.suppress(OSError):
                    entry.rmdir()
                    removed += 1
        return removed


# -- process-wide cache ----------------------------------------------------------

_ACTIVE = None
_CONFIGURED = False


def active_cache():
    """The process-wide cache, or ``None`` when disk caching is off.

    Never configured explicitly, the cache auto-enables only when
    ``REPRO_CACHE_DIR`` is set — plain unit-test runs stay free of
    surprise writes to the user's home directory.
    """
    global _ACTIVE, _CONFIGURED
    if not _CONFIGURED:
        _CONFIGURED = True
        if os.environ.get(CACHE_ENV):
            _ACTIVE = ResultCache()
    return _ACTIVE


def configure(root=None, tree_hash=None):
    """Enable the process-wide cache at ``root`` (default dir when
    ``None``); returns the previously active cache (or ``None``)."""
    global _ACTIVE, _CONFIGURED
    previous = _ACTIVE
    _ACTIVE = ResultCache(root=root, tree_hash=tree_hash)
    _CONFIGURED = True
    return previous


def disable():
    """Turn the process-wide cache off; returns the previous cache."""
    global _ACTIVE, _CONFIGURED
    previous = _ACTIVE
    _ACTIVE = None
    _CONFIGURED = True
    return previous


@contextlib.contextmanager
def temporary(root, tree_hash=None):
    """Context manager: swap in a cache at ``root``, restore after."""
    global _ACTIVE, _CONFIGURED
    previous, was_configured = _ACTIVE, _CONFIGURED
    _ACTIVE = ResultCache(root=root, tree_hash=tree_hash)
    _CONFIGURED = True
    try:
        yield _ACTIVE
    finally:
        _ACTIVE, _CONFIGURED = previous, was_configured
