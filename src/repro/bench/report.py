"""Plain-text rendering of tables and figure series."""


def format_table(headers, rows, title=None):
    """Fixed-width text table."""
    columns = [headers] + [[_cell(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def format_percent(value, signed=False):
    text = "%.1f%%" % (100.0 * value)
    if signed and value >= 0:
        text = "+" + text
    return text


def format_bars(title, values, width=44, unit="", baseline=None):
    """Horizontal ASCII bar chart for {label: value}.

    ``baseline`` draws a reference tick (e.g. 1.0 for speedups).
    """
    if not values:
        return title
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in values)
    lines = [title]
    for label, value in values.items():
        bar_length = int(round(width * value / peak))
        bar = "#" * bar_length
        if baseline is not None and 0 < baseline <= peak:
            tick = int(round(width * baseline / peak))
            if tick >= len(bar):
                bar = bar.ljust(tick) + "|"
            else:
                bar = bar[:tick] + "|" + bar[tick + 1:]
        lines.append("%s  %s %.3f%s" % (str(label).ljust(label_width),
                                        bar, value, unit))
    return "\n".join(lines)


def format_series(title, series):
    """Render a figure as labelled rows: {label: {series_name: value}}."""
    names = sorted({name for values in series.values() for name in values})
    headers = ["benchmark"] + list(names)
    rows = [[label] + [values.get(name, "") for name in names]
            for label, values in series.items()]
    return format_table(headers, rows, title=title)
