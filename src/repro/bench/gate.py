"""Performance gates: the sweep-regression gate and the serving SLO.

**Sweep gate.** The simulator is deterministic, so every metric of the
Section-7 sweep is a pure function of the source tree — which makes a
checked-in baseline a meaningful CI gate: any drift in speedups, MPKI
rates or type-check hit rates is a *behavioural* change someone made,
not noise.

``repro bench baseline`` regenerates ``benchmarks/results/baseline.json``
(do this, and commit the file, whenever a change intentionally shifts
the numbers); ``repro bench check`` recomputes the sweep (cache-aware)
and fails when any metric drifts beyond tolerance.

Tolerances are deliberately loose relative to determinism (default 2%
relative): they exist so that *intended* micro-adjustments (e.g. a
one-cycle latency tweak) fail loudly while float formatting or
dict-ordering differences never can.

**SLO gate.** :func:`check_slo` holds the serving line over a
``BENCH_serve.json`` artifact from ``repro loadgen``
(:mod:`repro.serve.loadgen`): p99 latency under load at the target
QPS, a sustained-throughput floor, bounded rejection rate, zero
errors, zero dropped in-flight requests on router drain, and
byte-identical counters on the sampled identity subset.  CI's
``serve-load`` job fails on it the same way ``perf-gate`` fails on the
sweep baseline; ``repro bench slo`` re-checks a saved artifact.
"""

import json
from dataclasses import dataclass

from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import BASELINE, CHECKED_LOAD, GATE_CONFIGS, TYPED
from repro.schema import SCHEMA_VERSION, SchemaError, require_artifact

#: The baseline payload version — an alias of the package-wide
#: :data:`repro.schema.SCHEMA_VERSION`; a mismatch fails the check
#: with a "regenerate the baseline" message rather than a diff storm.
BASELINE_VERSION = SCHEMA_VERSION

#: Metrics compared with *relative* tolerance.
RELATIVE_METRICS = ("speedup_typed", "speedup_chklb", "instructions",
                    "cycles")
#: Metrics compared with *absolute* tolerance (already-normalised rates
#: where a relative bound on a near-zero value is meaningless).
ABSOLUTE_METRICS = ("branch_mpki", "icache_mpki", "dcache_mpki",
                    "type_hit_rate")


@dataclass
class Violation:
    """One metric outside tolerance."""

    cell: str
    metric: str
    baseline: float
    current: float
    limit: float

    def describe(self):
        delta = self.current - self.baseline
        return "%-24s %-14s baseline=%-12.6g current=%-12.6g " \
            "drift=%+.6g (limit %.6g)" % (
                self.cell, self.metric, self.baseline, self.current,
                delta, self.limit)


def collect_metrics(records):
    """Reduce a sweep's records to the gated metric dict.

    Shape: ``{"engine/benchmark": {metric: value}}`` — flat enough to
    diff by eye in the committed JSON, structured enough to compare
    mechanically.

    Collection is deliberately pinned to :data:`GATE_CONFIGS` (the
    paper's triple) rather than the live registry: the committed
    baseline must stay comparable as schemes come and go, and
    :func:`compare` treats any extra metric as a violation.  Newly
    registered configs are gate-exempt until a new baseline covering
    them is generated and committed.
    """
    metrics = {}
    engines = sorted({key[0] for key in records})
    for engine in engines:
        for benchmark in BENCHMARK_ORDER:
            try:
                base = records[(engine, benchmark, BASELINE)]
                typed = records[(engine, benchmark, TYPED)]
                chklb = records[(engine, benchmark, CHECKED_LOAD)]
            except KeyError:
                continue
            cell = {}
            cell["speedup_typed"] = base.counters.cycles \
                / typed.counters.cycles
            cell["speedup_chklb"] = base.counters.cycles \
                / chklb.counters.cycles
            cell["type_hit_rate"] = typed.counters.type_hit_rate
            for config in GATE_CONFIGS:
                counters = records[(engine, benchmark, config)].counters
                cell["instructions/%s" % config] = counters.instructions
                cell["cycles/%s" % config] = counters.cycles
                cell["branch_mpki/%s" % config] = counters.branch_mpki
                cell["icache_mpki/%s" % config] = counters.icache_mpki
                cell["dcache_mpki/%s" % config] = counters.dcache_mpki
            metrics["%s/%s" % (engine, benchmark)] = cell
    return metrics


def write_baseline(path, records, note=""):
    """Serialise the gate metrics for ``records`` to ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "note": note or "regenerate with: repro bench baseline",
        "metrics": collect_metrics(records),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_baseline(path):
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            "baseline %s has version %r, expected %d — regenerate it "
            "with: repro bench baseline" % (
                path, payload.get("version") if isinstance(payload, dict)
                else None, BASELINE_VERSION))
    return payload


def _family(metric):
    """The tolerance family of a metric name (config suffix stripped)."""
    return metric.split("/", 1)[0]


def compare(baseline_metrics, current_metrics, rel_tol=0.02,
            abs_tol=0.05):
    """Compare two metric dicts; returns a list of :class:`Violation`.

    Relative-family metrics (speedups, instruction/cycle counts) fail
    on ``|cur - base| > rel_tol * |base|``; absolute-family metrics
    (MPKI, hit rates) on ``|cur - base| > abs_tol``.  A cell or metric
    present on only one side is itself a violation — shrinking the
    sweep must not silently pass the gate.
    """
    violations = []
    cells = sorted(set(baseline_metrics) | set(current_metrics))
    for cell in cells:
        base_cell = baseline_metrics.get(cell)
        cur_cell = current_metrics.get(cell)
        if base_cell is None or cur_cell is None:
            violations.append(Violation(
                cell=cell, metric="(missing)",
                baseline=float(base_cell is not None),
                current=float(cur_cell is not None), limit=0.0))
            continue
        for metric in sorted(set(base_cell) | set(cur_cell)):
            if metric not in base_cell or metric not in cur_cell:
                violations.append(Violation(
                    cell=cell, metric=metric,
                    baseline=base_cell.get(metric, float("nan")),
                    current=cur_cell.get(metric, float("nan")),
                    limit=0.0))
                continue
            base_value = float(base_cell[metric])
            cur_value = float(cur_cell[metric])
            if _family(metric) in RELATIVE_METRICS:
                limit = rel_tol * abs(base_value)
            else:
                limit = abs_tol
            if abs(cur_value - base_value) > limit:
                violations.append(Violation(
                    cell=cell, metric=metric, baseline=base_value,
                    current=cur_value, limit=limit))
    return violations


def check(baseline_path, records, rel_tol=0.02, abs_tol=0.05):
    """Load a baseline and gate ``records`` against it.

    Returns ``(violations, report_text)``; an empty list means the
    gate passes.
    """
    payload = load_baseline(baseline_path)
    current = collect_metrics(records)
    violations = compare(payload["metrics"], current,
                         rel_tol=rel_tol, abs_tol=abs_tol)
    if violations:
        lines = ["PERF GATE: %d metric(s) drifted beyond tolerance "
                 "(rel %.3g / abs %.3g):" % (len(violations), rel_tol,
                                             abs_tol)]
        lines += ["  " + violation.describe()
                  for violation in violations]
        lines.append("If the drift is intended, regenerate the "
                     "baseline: repro bench baseline --out %s"
                     % baseline_path)
        report = "\n".join(lines)
    else:
        report = "PERF GATE: ok — %d cells within tolerance " \
            "(rel %.3g / abs %.3g)" % (len(current), rel_tol, abs_tol)
    return violations, report


# -- the advisory host-throughput floor --------------------------------------

#: The floor is this fraction of the committed reference figure —
#: deliberately generous: host timing on shared CI runners is noisy in
#: a way the deterministic simulated metrics above are not, so this
#: advisory only catches order-of-magnitude regressions of the hot
#: loop (an accidentally disabled engine, a quadratic slip), never
#: jitter.
HOST_FLOOR_FRACTION = 0.5


def check_host_floor(records, simperf_path="BENCH_simperf.json",
                     fraction=HOST_FLOOR_FRACTION):
    """Advisory host-throughput floor against the committed perfbench
    artifact.

    Compares the sweep's observed host throughput (geomean simulated
    MIPS across ``records``) with ``geomean_mips_legacy`` from the
    stamped ``BENCH_simperf.json`` — the reference-loop figure, since
    gate sweeps run with attribution and therefore at reference-loop
    speed.  Returns ``(ok, text, details)``; **advisory only** — the
    caller prints the text (and may upload ``details``) but never
    fails the gate on it.  An unreadable, unstamped or mismatched
    artifact skips the check with ``ok=True``.
    """
    import math

    try:
        with open(simperf_path) as handle:
            payload = json.load(handle)
        require_artifact(payload, "simperf")
    except (OSError, ValueError, SchemaError) as err:
        return True, "HOST FLOOR: skipped — %s" % err, None
    reference = float(payload.get("aggregate", {})
                      .get("geomean_mips_legacy") or 0.0)
    if reference <= 0.0:
        return (True, "HOST FLOOR: skipped — no geomean_mips_legacy in "
                "%s (regenerate with tools/perfbench.py)" % simperf_path,
                None)
    mips = [record.simulated_mips for record in records.values()
            if record.simulated_mips > 0.0]
    if not mips:
        return (True, "HOST FLOOR: skipped — no cell carries a MIPS "
                "figure", None)
    measured = math.exp(sum(math.log(v) for v in mips) / len(mips))
    floor = fraction * reference
    ok = measured >= floor
    details = {
        "reference_mips": reference,
        "measured_mips": round(measured, 3),
        "floor_mips": round(floor, 3),
        "fraction": fraction,
        "cells": len(mips),
        "ok": ok,
        "source": simperf_path,
    }
    if ok:
        text = ("HOST FLOOR: ok (advisory) — geomean %.3f MIPS over %d "
                "cell(s), floor %.3f (%.0f%% of committed %.3f)"
                % (measured, len(mips), floor, 100.0 * fraction,
                   reference))
    else:
        text = ("HOST FLOOR: below floor (advisory) — geomean %.3f MIPS "
                "over %d cell(s) under %.3f (%.0f%% of committed %.3f); "
                "the hot loop likely regressed — profile before "
                "regenerating %s"
                % (measured, len(mips), floor, 100.0 * fraction,
                   reference, simperf_path))
    return ok, text, details


# -- the serving SLO gate ----------------------------------------------------

#: Default SLO bounds for the serve-load gate (``repro loadgen``
#: against a 2-shard router on a cold CI runner; see docs/SERVING.md
#: for the policy).  ``p99_ms`` is deliberately generous — the first
#: requests pay worker-pool fork+warm — while the structural bounds
#: (zero errors, zero dropped on drain, identity) are exact.
DEFAULT_SLO = {
    "p99_ms": 5000.0,
    "min_qps_fraction": 0.5,
    "max_rejection_rate": 0.25,
    "max_error_rate": 0.0,
    "max_drain_dropped": 0,
    "require_identity": True,
}


def check_slo(report, **overrides):
    """Gate a ``BENCH_serve.json`` payload against the serving SLO.

    ``report`` is the stamped artifact dict from
    :func:`repro.serve.loadgen.make_report`; ``overrides`` replace
    individual :data:`DEFAULT_SLO` bounds (``None`` disables a bound).
    Returns ``(violations, text)`` like :func:`check` — an empty list
    means the SLO holds.
    """
    slo = dict(DEFAULT_SLO)
    unknown = set(overrides) - set(slo)
    if unknown:
        raise ValueError("unknown SLO bound(s): %s"
                         % ", ".join(sorted(unknown)))
    slo.update(overrides)
    try:
        require_artifact(report, "serve-load")
    except SchemaError as err:
        return (["artifact: %s" % err],
                "SLO GATE: unreadable artifact — %s" % err)

    violations = []
    latency = report.get("latency_ms", {})
    spec = report.get("spec", {})
    drain = report.get("drain", {})
    identity = report.get("identity", {})

    if slo["p99_ms"] is not None:
        p99 = float(latency.get("p99", float("inf")))
        if p99 > slo["p99_ms"]:
            violations.append(
                "p99 latency %.1fms exceeds the %.1fms bound"
                % (p99, slo["p99_ms"]))
    if slo["min_qps_fraction"] is not None:
        target = float(spec.get("qps", 0.0))
        sustained = float(report.get("sustained_qps", 0.0))
        floor = slo["min_qps_fraction"] * target
        if sustained < floor:
            violations.append(
                "sustained %.2f QPS below %.2f (%.0f%% of the %.2f "
                "target)" % (sustained, floor,
                             100.0 * slo["min_qps_fraction"], target))
    if slo["max_rejection_rate"] is not None:
        rejection = float(report.get("rejection_rate", 1.0))
        if rejection > slo["max_rejection_rate"]:
            violations.append(
                "rejection rate %.1f%% exceeds the %.1f%% bound"
                % (100.0 * rejection, 100.0 * slo["max_rejection_rate"]))
    if slo["max_error_rate"] is not None:
        errors = float(report.get("error_rate", 1.0))
        if errors > slo["max_error_rate"]:
            violations.append(
                "error rate %.1f%% exceeds the %.1f%% bound (samples: "
                "%s)" % (100.0 * errors,
                         100.0 * slo["max_error_rate"],
                         report.get("traffic", {}).get("error_samples")))
    if slo["max_drain_dropped"] is not None:
        if not drain.get("checked"):
            violations.append("drain was never exercised — zero-dropped "
                              "on drain is unverified")
        elif int(drain.get("dropped", 1)) > slo["max_drain_dropped"]:
            violations.append(
                "%d of %d in-flight request(s) dropped on drain "
                "(bound %d)" % (drain.get("dropped"),
                                drain.get("inflight_at_drain", 0),
                                slo["max_drain_dropped"]))
    if slo["require_identity"]:
        sampled = int(identity.get("sampled", 0))
        matched = int(identity.get("matched", -1))
        if sampled < 1:
            violations.append("identity subset is empty — served "
                              "counters were never cross-checked")
        elif matched != sampled:
            violations.append(
                "identity broken: served counters diverge from "
                "in-process execution on %d of %d sampled key(s): %s"
                % (sampled - matched, sampled,
                   identity.get("mismatched_keys")))

    if violations:
        lines = ["SLO GATE: %d violation(s):" % len(violations)]
        lines += ["  " + violation for violation in violations]
        text = "\n".join(lines)
    else:
        text = ("SLO GATE: ok — p99 %.1fms at %.2f sustained QPS, "
                "cache hit rate %.1f%%, rejections %.1f%%, "
                "%d/%d identity, 0 dropped on drain"
                % (float(latency.get("p99", 0.0)),
                   float(report.get("sustained_qps", 0.0)),
                   100.0 * float(report.get("cache_hit_rate", 0.0)),
                   100.0 * float(report.get("rejection_rate", 0.0)),
                   int(identity.get("matched", 0)),
                   int(identity.get("sampled", 0))))
    return violations, text


# -- the chaos SLO gate ------------------------------------------------------

#: Default bounds for the chaos gate (``repro chaos`` against a
#: supervised 2-shard tier; see docs/RELIABILITY.md).  The structural
#: bounds are exact: a self-healing tier under seeded faults loses
#: *nothing* and duplicates *nothing* — a killed shard's in-flight
#: work is re-dispatched (``retried``), overload is shed with a typed
#: rejection, and the ring is whole again at the end.  ``mttr`` is
#: generous for cold CI runners; the zero bounds are the gate.
DEFAULT_CHAOS_SLO = {
    "max_lost": 0,
    "max_duplicated": 0,
    "max_mttr_seconds": 30.0,
    "require_ring_full": True,
    "min_served": 1,
}


def check_chaos(report, **overrides):
    """Gate a ``BENCH_chaos.json`` payload against the chaos SLO.

    ``report`` is the stamped artifact dict from
    :func:`repro.serve.chaos.make_chaos_report`; ``overrides`` replace
    individual :data:`DEFAULT_CHAOS_SLO` bounds (``None`` disables
    one).  Returns ``(violations, text)`` like :func:`check_slo`.
    """
    slo = dict(DEFAULT_CHAOS_SLO)
    unknown = set(overrides) - set(slo)
    if unknown:
        raise ValueError("unknown chaos SLO bound(s): %s"
                         % ", ".join(sorted(unknown)))
    slo.update(overrides)
    try:
        require_artifact(report, "chaos")
    except SchemaError as err:
        return (["artifact: %s" % err],
                "CHAOS GATE: unreadable artifact — %s" % err)

    violations = []
    traffic = report.get("traffic", {})
    recovery = report.get("recovery", {})
    faults = report.get("faults", [])

    if slo["max_lost"] is not None:
        lost = int(traffic.get("lost", 1))
        if lost > slo["max_lost"]:
            violations.append(
                "%d request(s) LOST under faults (bound %d; samples: "
                "%s)" % (lost, slo["max_lost"],
                         traffic.get("lost_samples")))
    if slo["max_duplicated"] is not None:
        duplicated = int(traffic.get("duplicated", 1))
        if duplicated > slo["max_duplicated"]:
            violations.append(
                "%d duplicated terminal frame(s) (bound %d) — the "
                "re-dispatch journal failed its exactly-once contract"
                % (duplicated, slo["max_duplicated"]))
    if slo["max_mttr_seconds"] is not None:
        for fault in faults:
            mttr = fault.get("mttr_seconds")
            if mttr is None:
                violations.append(
                    "%s of shard %s never recovered"
                    % (fault.get("kind"), fault.get("shard")))
            elif mttr > slo["max_mttr_seconds"]:
                violations.append(
                    "%s of shard %s took %.2fs to recover (bound "
                    "%.2fs)" % (fault.get("kind"), fault.get("shard"),
                                mttr, slo["max_mttr_seconds"]))
    if slo["require_ring_full"] and not recovery.get("ring_full"):
        violations.append(
            "ring never returned to full strength: missing %s"
            % recovery.get("unrecovered"))
    if slo["min_served"] is not None:
        served = int(traffic.get("served", 0)) \
            + int(traffic.get("retried", 0))
        if served < slo["min_served"]:
            violations.append(
                "only %d request(s) served under faults (need %d) — "
                "the run proves nothing" % (served, slo["min_served"]))

    if violations:
        lines = ["CHAOS GATE: %d violation(s):" % len(violations)]
        lines += ["  " + violation for violation in violations]
        text = "\n".join(lines)
    else:
        text = ("CHAOS GATE: ok — %d served + %d retried, %d shed, "
                "0 lost, 0 duplicated across %d fault(s); max MTTR "
                "%.2fs, ring full"
                % (int(traffic.get("served", 0)),
                   int(traffic.get("retried", 0)),
                   int(traffic.get("shed", 0)), len(faults),
                   float(recovery.get("max_mttr_seconds", 0.0))))
    return violations, text
