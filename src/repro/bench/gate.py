"""Performance regression gate over the benchmark sweep.

The simulator is deterministic, so every metric of the Section-7 sweep
is a pure function of the source tree — which makes a checked-in
baseline a meaningful CI gate: any drift in speedups, MPKI rates or
type-check hit rates is a *behavioural* change someone made, not noise.

``repro bench baseline`` regenerates ``benchmarks/results/baseline.json``
(do this, and commit the file, whenever a change intentionally shifts
the numbers); ``repro bench check`` recomputes the sweep (cache-aware)
and fails when any metric drifts beyond tolerance.

Tolerances are deliberately loose relative to determinism (default 2%
relative): they exist so that *intended* micro-adjustments (e.g. a
one-cycle latency tweak) fail loudly while float formatting or
dict-ordering differences never can.
"""

import json
from dataclasses import dataclass

from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import BASELINE, CHECKED_LOAD, GATE_CONFIGS, TYPED
from repro.schema import SCHEMA_VERSION

#: The baseline payload version — an alias of the package-wide
#: :data:`repro.schema.SCHEMA_VERSION`; a mismatch fails the check
#: with a "regenerate the baseline" message rather than a diff storm.
BASELINE_VERSION = SCHEMA_VERSION

#: Metrics compared with *relative* tolerance.
RELATIVE_METRICS = ("speedup_typed", "speedup_chklb", "instructions",
                    "cycles")
#: Metrics compared with *absolute* tolerance (already-normalised rates
#: where a relative bound on a near-zero value is meaningless).
ABSOLUTE_METRICS = ("branch_mpki", "icache_mpki", "dcache_mpki",
                    "type_hit_rate")


@dataclass
class Violation:
    """One metric outside tolerance."""

    cell: str
    metric: str
    baseline: float
    current: float
    limit: float

    def describe(self):
        delta = self.current - self.baseline
        return "%-24s %-14s baseline=%-12.6g current=%-12.6g " \
            "drift=%+.6g (limit %.6g)" % (
                self.cell, self.metric, self.baseline, self.current,
                delta, self.limit)


def collect_metrics(records):
    """Reduce a sweep's records to the gated metric dict.

    Shape: ``{"engine/benchmark": {metric: value}}`` — flat enough to
    diff by eye in the committed JSON, structured enough to compare
    mechanically.

    Collection is deliberately pinned to :data:`GATE_CONFIGS` (the
    paper's triple) rather than the live registry: the committed
    baseline must stay comparable as schemes come and go, and
    :func:`compare` treats any extra metric as a violation.  Newly
    registered configs are gate-exempt until a new baseline covering
    them is generated and committed.
    """
    metrics = {}
    engines = sorted({key[0] for key in records})
    for engine in engines:
        for benchmark in BENCHMARK_ORDER:
            try:
                base = records[(engine, benchmark, BASELINE)]
                typed = records[(engine, benchmark, TYPED)]
                chklb = records[(engine, benchmark, CHECKED_LOAD)]
            except KeyError:
                continue
            cell = {}
            cell["speedup_typed"] = base.counters.cycles \
                / typed.counters.cycles
            cell["speedup_chklb"] = base.counters.cycles \
                / chklb.counters.cycles
            cell["type_hit_rate"] = typed.counters.type_hit_rate
            for config in GATE_CONFIGS:
                counters = records[(engine, benchmark, config)].counters
                cell["instructions/%s" % config] = counters.instructions
                cell["cycles/%s" % config] = counters.cycles
                cell["branch_mpki/%s" % config] = counters.branch_mpki
                cell["icache_mpki/%s" % config] = counters.icache_mpki
                cell["dcache_mpki/%s" % config] = counters.dcache_mpki
            metrics["%s/%s" % (engine, benchmark)] = cell
    return metrics


def write_baseline(path, records, note=""):
    """Serialise the gate metrics for ``records`` to ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "note": note or "regenerate with: repro bench baseline",
        "metrics": collect_metrics(records),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_baseline(path):
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            "baseline %s has version %r, expected %d — regenerate it "
            "with: repro bench baseline" % (
                path, payload.get("version") if isinstance(payload, dict)
                else None, BASELINE_VERSION))
    return payload


def _family(metric):
    """The tolerance family of a metric name (config suffix stripped)."""
    return metric.split("/", 1)[0]


def compare(baseline_metrics, current_metrics, rel_tol=0.02,
            abs_tol=0.05):
    """Compare two metric dicts; returns a list of :class:`Violation`.

    Relative-family metrics (speedups, instruction/cycle counts) fail
    on ``|cur - base| > rel_tol * |base|``; absolute-family metrics
    (MPKI, hit rates) on ``|cur - base| > abs_tol``.  A cell or metric
    present on only one side is itself a violation — shrinking the
    sweep must not silently pass the gate.
    """
    violations = []
    cells = sorted(set(baseline_metrics) | set(current_metrics))
    for cell in cells:
        base_cell = baseline_metrics.get(cell)
        cur_cell = current_metrics.get(cell)
        if base_cell is None or cur_cell is None:
            violations.append(Violation(
                cell=cell, metric="(missing)",
                baseline=float(base_cell is not None),
                current=float(cur_cell is not None), limit=0.0))
            continue
        for metric in sorted(set(base_cell) | set(cur_cell)):
            if metric not in base_cell or metric not in cur_cell:
                violations.append(Violation(
                    cell=cell, metric=metric,
                    baseline=base_cell.get(metric, float("nan")),
                    current=cur_cell.get(metric, float("nan")),
                    limit=0.0))
                continue
            base_value = float(base_cell[metric])
            cur_value = float(cur_cell[metric])
            if _family(metric) in RELATIVE_METRICS:
                limit = rel_tol * abs(base_value)
            else:
                limit = abs_tol
            if abs(cur_value - base_value) > limit:
                violations.append(Violation(
                    cell=cell, metric=metric, baseline=base_value,
                    current=cur_value, limit=limit))
    return violations


def check(baseline_path, records, rel_tol=0.02, abs_tol=0.05):
    """Load a baseline and gate ``records`` against it.

    Returns ``(violations, report_text)``; an empty list means the
    gate passes.
    """
    payload = load_baseline(baseline_path)
    current = collect_metrics(records)
    violations = compare(payload["metrics"], current,
                         rel_tol=rel_tol, abs_tol=abs_tol)
    if violations:
        lines = ["PERF GATE: %d metric(s) drifted beyond tolerance "
                 "(rel %.3g / abs %.3g):" % (len(violations), rel_tol,
                                             abs_tol)]
        lines += ["  " + violation.describe()
                  for violation in violations]
        lines.append("If the drift is intended, regenerate the "
                     "baseline: repro bench baseline --out %s"
                     % baseline_path)
        report = "\n".join(lines)
    else:
        report = "PERF GATE: ok — %d cells within tolerance " \
            "(rel %.3g / abs %.3g)" % (len(current), rel_tol, abs_tol)
    return violations, report
