"""Benchmark workloads, the experiment runner, and figure/table
regeneration for the paper's evaluation section.

Sweep machinery: :mod:`repro.bench.runner` (serial, memoised),
:mod:`repro.bench.parallel` (sharded across cores) and
:mod:`repro.bench.cache` (content-addressed persistent results).
"""

from repro.bench.workloads import WORKLOADS, Workload, workload

__all__ = ["WORKLOADS", "Workload", "workload"]
