"""Benchmark workloads, the experiment runner, and figure/table
regeneration for the paper's evaluation section."""

from repro.bench.workloads import WORKLOADS, Workload, workload

__all__ = ["WORKLOADS", "Workload", "workload"]
