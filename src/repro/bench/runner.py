"""Run benchmarks over the (engine, workload, config) matrix.

Results are memoised per process: the figures of Section 7 all derive
from the same sweep.
"""

from dataclasses import dataclass

from repro.bench.workloads import BENCHMARK_ORDER, workload
from repro.engines import CONFIGS
from repro.engines.js import run_js
from repro.engines.lua import run_lua

ENGINES = ("lua", "js")

_RUNNERS = {"lua": (run_lua, "lua_source"), "js": (run_js, "js_source")}

_CACHE = {}


@dataclass
class RunRecord:
    """One simulated benchmark run."""

    engine: str
    benchmark: str
    config: str
    scale: int
    output: str
    counters: object

    @property
    def total_bytecodes(self):
        return sum(self.counters.bytecode_counts.values())


def run_benchmark(engine, benchmark, config, scale=None, use_cache=True):
    """Run one benchmark on one engine/config; returns a RunRecord."""
    spec = workload(benchmark)
    scale = scale or spec.default_scale
    key = (engine, benchmark, config, scale)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    run, source_attr = _RUNNERS[engine]
    source = getattr(spec, source_attr)(scale)
    result = run(source, config=config)
    record = RunRecord(engine=engine, benchmark=benchmark, config=config,
                       scale=scale, output=result.output,
                       counters=result.counters)
    if use_cache:
        _CACHE[key] = record
    return record


def run_matrix(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
               configs=CONFIGS, scales=None, progress=None):
    """Run the full sweep; returns {(engine, benchmark, config): record}.

    ``scales`` optionally overrides the per-benchmark input scale;
    ``progress`` is an optional callback invoked with each key.
    """
    records = {}
    for engine in engines:
        for benchmark in benchmarks:
            scale = (scales or {}).get(benchmark)
            for config in configs:
                if progress is not None:
                    progress((engine, benchmark, config))
                records[(engine, benchmark, config)] = run_benchmark(
                    engine, benchmark, config, scale=scale)
    return records


def verify_outputs_match(records):
    """Check every benchmark produced identical output on all configs.

    Returns the list of mismatching (engine, benchmark) pairs (empty when
    everything agrees) — the architectural-equivalence sanity gate for
    every experiment.
    """
    mismatches = []
    seen = {}
    for (engine, benchmark, _config), record in records.items():
        key = (engine, benchmark)
        if key in seen and seen[key] != record.output:
            mismatches.append(key)
        seen.setdefault(key, record.output)
    return sorted(set(mismatches))


def clear_cache():
    _CACHE.clear()
