"""Run benchmarks over the (engine, workload, config) matrix.

Results are memoised at two levels: a per-process dict (``_CACHE``)
and, when configured, the content-addressed disk cache of
:mod:`repro.bench.cache` — the figures of Section 7 all derive from
the same sweep, and with the disk cache enabled that sweep survives
across processes.  For the multi-core sharded sweep see
:func:`repro.bench.parallel.run_matrix_parallel`.
"""

from dataclasses import dataclass

from repro.bench import cache as result_cache
from repro.bench.workloads import BENCHMARK_ORDER, workload
from repro.engines import all_configs

ENGINES = ("lua", "js")

_SOURCE_ATTRS = {"lua": "lua_source", "js": "js_source"}

_CACHE = {}


@dataclass
class RunRecord:
    """One simulated benchmark run.

    ``telemetry`` holds the event-bus summary dict for runs executed
    with telemetry attached (``None`` for plain runs); it round-trips
    through the disk cache so sweep-level attribution reports can name
    what a cached run observed.

    ``wall_seconds``/``simulated_mips`` record the host-side cost of
    the simulation itself (simulated instructions per host second in
    millions); they describe the run that produced the record, so they
    round-trip through the disk cache unchanged.
    """

    engine: str
    benchmark: str
    config: str
    scale: int
    output: str
    counters: object
    telemetry: dict = None
    wall_seconds: float = 0.0
    simulated_mips: float = 0.0

    @property
    def total_bytecodes(self):
        return sum(self.counters.bytecode_counts.values())


def resolve_scale(benchmark, scale=None):
    """The effective input scale for one cell."""
    return scale or workload(benchmark).default_scale


def cached_record(engine, benchmark, config, scale=None):
    """Look one cell up in the memory cache, then the disk cache;
    returns the record or ``None`` without ever simulating."""
    scale = resolve_scale(benchmark, scale)
    key = (engine, benchmark, config, scale)
    if key in _CACHE:
        return _CACHE[key]
    disk = result_cache.active_cache()
    if disk is not None:
        record = disk.load(*key)
        if record is not None:
            _CACHE[key] = record
            return record
    return None


def publish(record, disk=None):
    """Insert an externally computed record (e.g. from a pool worker)
    into the memory cache and, when given, the disk cache."""
    key = (record.engine, record.benchmark, record.config, record.scale)
    _CACHE[key] = record
    if disk is not None:
        disk.store(record)
    return record


def run_benchmark(engine, benchmark, config, scale=None, use_cache=True,
                  telemetry=None, use_blocks=True, use_traces=True,
                  attribute=True):
    """Run one benchmark on one engine/config; returns a RunRecord.

    ``use_cache=False`` bypasses (and leaves untouched) both the
    per-process memoisation and the disk cache.  ``telemetry``
    attaches an event bus to the run; a telemetry-enabled cell is
    always simulated fresh (the bus must observe the actual run) and
    its summary is carried in ``record.telemetry`` through the caches.

    ``use_blocks`` enables the basic-block superinstruction engine
    (see :mod:`repro.sim.blocks`); counters are bit-identical either
    way, so cached records are shared across the setting.
    ``attribute=False`` skips per-bytecode attribution — the fastest
    way to run a cell, used by ``tools/perfbench.py`` — and forces the
    cell to bypass the caches, since attribution-free counters would
    starve the figure pipeline if they were ever served from cache.
    """
    from repro import api

    spec = workload(benchmark)
    scale = scale or spec.default_scale
    if not attribute:
        use_cache = False
    if use_cache and telemetry is None:
        record = cached_record(engine, benchmark, config, scale)
        if record is not None:
            return record
    source = getattr(spec, _SOURCE_ATTRS[engine])(scale)
    result = api._engine_run(engine, source, config=config,
                             telemetry=telemetry, use_blocks=use_blocks,
                             use_traces=use_traces, attribute=attribute)
    record = RunRecord(engine=engine, benchmark=benchmark, config=config,
                       scale=scale, output=result.output,
                       counters=result.counters,
                       telemetry=telemetry.summary()
                       if telemetry is not None else None,
                       wall_seconds=result.wall_seconds,
                       simulated_mips=result.simulated_mips)
    if use_cache:
        publish(record, disk=result_cache.active_cache())
    return record


def run_matrix_batched(cells=None, **kwargs):
    """Shared-predecode batch execution of sweep cells (uncached,
    attribution-free — the host-perf path); delegates to
    :func:`repro.bench.batch.run_batch` and returns its
    ``(records, report)``.  The report's ``assemblies`` counters audit
    that each ``(engine, config)`` pair assembled at most once in this
    process."""
    from repro.bench.batch import run_batch
    return run_batch(cells, **kwargs)


def run_matrix(engines=ENGINES, benchmarks=BENCHMARK_ORDER,
               configs=None, scales=None, progress=None,
               use_cache=True):
    """Run the full sweep serially; returns
    {(engine, benchmark, config): record}.

    ``scales`` optionally overrides the per-benchmark input scale;
    ``progress`` is an optional callback invoked with each key;
    ``use_cache`` is forwarded to every :func:`run_benchmark` call so
    callers can force an uncached sweep.
    """
    configs = all_configs() if configs is None else configs
    records = {}
    for engine in engines:
        for benchmark in benchmarks:
            scale = (scales or {}).get(benchmark)
            for config in configs:
                if progress is not None:
                    progress((engine, benchmark, config))
                records[(engine, benchmark, config)] = run_benchmark(
                    engine, benchmark, config, scale=scale,
                    use_cache=use_cache)
    return records


def verify_outputs_match(records):
    """Check every benchmark produced identical output on all configs.

    Returns the list of mismatching (engine, benchmark) pairs (empty when
    everything agrees) — the architectural-equivalence sanity gate for
    every experiment.
    """
    mismatches = []
    seen = {}
    for (engine, benchmark, _config), record in records.items():
        key = (engine, benchmark)
        if key in seen and seen[key] != record.output:
            mismatches.append(key)
        seen.setdefault(key, record.output)
    return sorted(set(mismatches))


def clear_cache():
    _CACHE.clear()
