"""Command-line interface: ``typedarch`` (or ``python -m repro``).

Subcommands:

* ``run`` — run one benchmark on one engine/config and print counters,
* ``sweep`` — run the full matrix (sharded over ``--jobs`` workers,
  persisted in the disk cache unless ``--no-disk-cache``) and print
  Figures 5-9 (``--attribution`` adds per-benchmark attribution),
* ``tables`` — print the static tables (1, 6, 7) and the Table 8 model,
* ``trace`` — instruction/bytecode traces (telemetry-sink tracers),
* ``profile`` — per-opcode hot table, TRT-miss attribution and
  optional Chrome trace for a benchmark or a ``.lua``/``.js`` script,
* ``faults`` — seeded fault-injection campaign over the matrix with a
  detection-coverage report (``--smoke`` runs the deterministic CI
  campaign; see docs/RELIABILITY.md),
* ``bench baseline``/``bench check`` — the CI performance gate,
* ``bench cache --verify`` — scan the result cache, quarantining any
  corrupt or truncated entries to ``<cache>/corrupt/``.
"""

import argparse
import sys

from repro.bench import cache as result_cache
from repro.bench import experiments
from repro.bench.runner import clear_cache, run_benchmark, \
    verify_outputs_match
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import BASELINE, CONFIGS, TYPED


def _cmd_run(args):
    if args.model == "scoreboard":
        from repro.bench.workloads import workload
        from repro.uarch.scoreboard import ScoreboardMachine
        if args.engine == "lua":
            from repro.engines.lua import vm as engine_vm
        else:
            from repro.engines.js import vm as engine_vm
        spec = workload(args.benchmark)
        source = spec.lua_source(args.scale) if args.engine == "lua" \
            else spec.js_source(args.scale)
        cpu, runtime, _program = engine_vm.prepare(source, args.config)
        counters = ScoreboardMachine(cpu).run()
        output = "".join(runtime.output)
        counter_view = counters.as_dict()
    else:
        record = run_benchmark(args.engine, args.benchmark, args.config,
                               scale=args.scale,
                               use_blocks=not args.no_blocks,
                               attribute=not args.no_attribution,
                               use_cache=not args.fresh)
        output = record.output
        counter_view = record.counters.as_dict()
    sys.stdout.write(output)
    print("--- counters (%s model) ---" % args.model)
    for key, value in counter_view.items():
        if isinstance(value, dict):
            continue  # per-bytecode breakdowns; see ``profile``
        print("%-20s %s" % (key, value))
    if args.model == "fast" and record.wall_seconds:
        print("%-20s %.3f" % ("host_seconds", record.wall_seconds))
        print("%-20s %.3f" % ("simulated_mips", record.simulated_mips))
    return 0


def _progress_printer(event):
    engine, benchmark, config = event.key
    if event.cached:
        status = "cache hit"
        if event.mips:
            status += " (%.2f MIPS recorded)" % event.mips
    else:
        status = "%.2fs, %.0fk instr/s" % (event.seconds,
                                           event.throughput / 1000.0)
    print("[%3d/%d] %s/%s [%s] %s" % (event.completed, event.total,
                                      engine, benchmark, config, status),
          file=sys.stderr)


def _configure_disk_cache(args):
    if args.no_disk_cache:
        result_cache.disable()
    else:
        result_cache.configure(args.cache_dir)


def _cmd_sweep_smoke(args):
    """2-cell parallel sweep against a throwaway disk cache: run cold,
    clear the memory cache, run warm, and check the warm pass was pure
    cache hits with identical records.  ``make sweep`` runs this."""
    import tempfile
    from repro.bench.parallel import run_matrix_parallel

    kwargs = dict(engines=("lua",), benchmarks=("fibo",),
                  configs=(BASELINE, TYPED), scales={"fibo": 8},
                  max_workers=args.jobs or 2)
    with tempfile.TemporaryDirectory() as tmp:
        with result_cache.temporary(args.cache_dir or tmp):
            clear_cache()
            cold, warm = [], []
            records = run_matrix_parallel(progress=cold.append, **kwargs)
            clear_cache()
            again = run_matrix_parallel(progress=warm.append, **kwargs)
    clear_cache()
    hits = sum(1 for event in warm if event.cached)
    identical = list(records) == list(again) and all(
        records[key].output == again[key].output
        and records[key].counters == again[key].counters
        for key in records)
    ok = identical and len(records) == len(warm) == hits
    print("sweep smoke: %d cells | cold hits %d | warm hits %d/%d | "
          "records %s" % (len(records),
                          sum(1 for event in cold if event.cached),
                          hits, len(warm),
                          "identical" if identical else "MISMATCH"))
    print("sweep smoke: %s" % ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_sweep(args):
    from repro.bench.parallel import run_matrix_parallel

    if args.smoke:
        return _cmd_sweep_smoke(args)
    _configure_disk_cache(args)
    scales = None
    if args.quick:
        scales = {name: max(2, spec.default_scale // 2)
                  for name, spec in
                  __import__("repro.bench.workloads",
                             fromlist=["WORKLOADS"]).WORKLOADS.items()}

    records = run_matrix_parallel(
        scales=scales, max_workers=args.jobs,
        progress=_progress_printer if args.verbose else None)
    mismatches = verify_outputs_match(records)
    if mismatches:
        print("OUTPUT MISMATCH across configs: %s" % mismatches)
        return 1
    print(experiments.render_figure2a(experiments.figure2a(records)))
    print()
    print(experiments.render_figure2b(experiments.figure2b(records)))
    print()
    print(experiments.render_figure5(experiments.figure5(records)))
    print()
    print(experiments.render_figure6(experiments.figure6(records)))
    print()
    print(experiments.render_figure7(experiments.figure7(records)))
    print()
    print(experiments.render_figure8(experiments.figure8(records)))
    print()
    print(experiments.render_figure9(experiments.figure9(records)))
    print()
    print(experiments.render_figure9_detail(
        experiments.figure9_detail(records)))
    print()
    _summary, text = experiments.table8(records)
    print(text)
    if args.attribution:
        print()
        print(experiments.render_attribution(
            experiments.attribution(records)))
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(experiments.to_json(records), handle, indent=1,
                      sort_keys=True)
        print("\nwrote %s" % args.json)
    return 0


def _cmd_trace(args):
    if args.engine == "lua":
        from repro.engines.lua import vm as engine_vm
    else:
        from repro.engines.js import vm as engine_vm
    from repro.bench.workloads import workload
    from repro.sim.trace import BytecodeTracer, InstructionTracer

    spec = workload(args.benchmark)
    source = spec.lua_source(args.scale) if args.engine == "lua" \
        else spec.js_source(args.scale)
    cpu, runtime, program = engine_vm.prepare(source, args.config)
    if args.bytecodes:
        _prog, attribution = engine_vm.interpreter_program(args.config)
        entry_points = {
            program.base + 4 * index: attribution.entry_names[entry_id]
            for index, entry_id in enumerate(attribution.entry_of)
            if entry_id >= 0}
        tracer = BytecodeTracer(cpu, entry_points, limit=args.limit)
        tracer.run(max_instructions=args.max_instructions)
        print(tracer.format())
        print()
        for name, count in sorted(tracer.counts.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            print("%-12s %d" % (name, count))
    else:
        tracer = InstructionTracer(cpu, limit=args.limit)
        tracer.run(max_instructions=args.max_instructions)
        print(tracer.format())
    sys.stdout.write(("".join(runtime.output)) and
                     "--- output ---\n" + "".join(runtime.output) or "")
    return 0


def _cmd_profile(args):
    """Telemetry-backed profile: per-opcode hot table and TRT
    attribution for one benchmark or a ``.lua``/``.js`` script."""
    from repro.telemetry import (render_opcode_table, render_trt_table,
                                 run_profile)

    result = run_profile(args.target, engine=args.engine,
                         config=args.config, scale=args.scale,
                         chrome_trace=args.chrome_trace,
                         events_path=args.events)
    print(render_opcode_table(result, top=args.top))
    print()
    print(render_trt_table(result, top=args.top))
    if args.buckets:
        counters = result.counters
        total = counters.core_instructions
        print()
        print("%-28s %12s %7s" % ("handler bucket", "instructions",
                                  "share"))
        print("-" * 49)
        shown = 0
        buckets = sorted(counters.bucket_instructions.items(),
                         key=lambda kv: (-kv[1], kv[0]))
        for name, instructions in buckets[:args.top]:
            if not instructions:
                break
            shown += instructions
            print("%-28s %12d %6.1f%%" % (name, instructions,
                                          100.0 * instructions / total))
        print("%-28s %12d %6.1f%%" % ("(other)", total - shown,
                                      100.0 * (total - shown) / total))
    if args.chrome_trace:
        print("\nwrote Chrome trace: %s (load in Perfetto or "
              "chrome://tracing)" % args.chrome_trace)
    if args.events:
        print("wrote event log: %s" % args.events)
    if args.show_output and result.output:
        sys.stdout.write("--- output ---\n" + result.output)
    return 0


def _render_faults_report(report):
    lines = []
    classes = report["classes"]
    total = sum(classes.values()) or 1
    lines.append("fault campaign: seed %d, %d injections per cell, "
                 "%d total" % (report["seed"], report["count_per_cell"],
                               sum(classes.values())))
    lines.append("  " + "  ".join("%s %d (%.1f%%)"
                                  % (name, count, 100.0 * count / total)
                                  for name, count in classes.items()))
    lines.append("")
    lines.append("detection coverage (detected/total) by config x target:")
    targets = report["targets"]
    header = "%-10s" % "config" + "".join("%14s" % t for t in targets)
    lines.append(header)
    lines.append("-" * len(header))
    for config, coverage in report["coverage"].items():
        row = "%-10s" % config
        for target in targets:
            cell = coverage.get(target)
            row += "%14s" % ("%d/%d" % (cell["detected"], cell["total"])
                             if cell else "-")
        lines.append(row)
    return "\n".join(lines)


def _faults_progress(done, total, result):
    spec = result["spec"]
    print("[%3d/%d] %s@%d -> %s" % (done, total, spec["target"],
                                    spec["index"], result["class"]),
          file=sys.stderr)


def _cmd_faults_smoke(args):
    """Tiny fixed-seed campaign run at --jobs 1 and --jobs 2: asserts
    the reports are byte-identical (determinism across worker counts)
    and that the typed config detects strictly more injected tag-plane
    corruptions than baseline.  ``make faults-smoke`` runs this."""
    import json
    import tempfile
    from repro.faults import run_campaign

    kwargs = dict(seed=args.seed, count=args.count or 25,
                  engines=("lua",), benchmarks=("fibo",),
                  scales={"fibo": 10})
    with tempfile.TemporaryDirectory() as tmp:
        with result_cache.temporary(args.cache_dir or tmp):
            clear_cache()
            serial = run_campaign(max_workers=1, **kwargs)
            clear_cache()
            parallel = run_campaign(max_workers=args.jobs or 2, **kwargs)
    clear_cache()
    identical = json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)

    def tag_detections(config):
        return serial["coverage"].get(config, {}).get("mem_tag", {}) \
            .get("detected", 0)

    base_hits = tag_detections("baseline")
    tag_margin = all(tag_detections(config) > base_hits
                     for config in ("typed", "chklb"))
    print(_render_faults_report(serial))
    print()
    print("faults smoke: reports %s | tag-plane detections "
          "typed %d / chklb %d > baseline %d: %s"
          % ("identical" if identical else "MISMATCH",
             tag_detections("typed"), tag_detections("chklb"),
             base_hits, "yes" if tag_margin else "NO"))
    ok = identical and tag_margin
    print("faults smoke: %s" % ("OK" if ok else "FAILED"))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(serial, handle, indent=1, sort_keys=True)
        print("wrote %s" % args.json)
    return 0 if ok else 1


def _cmd_faults(args):
    from repro.faults import run_campaign

    if args.smoke:
        return _cmd_faults_smoke(args)
    _configure_disk_cache(args)
    scales = None
    if args.quick:
        scales = {name: max(2, spec.default_scale // 2)
                  for name, spec in
                  __import__("repro.bench.workloads",
                             fromlist=["WORKLOADS"]).WORKLOADS.items()}
    report = run_campaign(
        seed=args.seed, count=args.count or 40,
        engines=tuple(args.engine) if args.engine else ("lua", "js"),
        benchmarks=tuple(args.benchmark) if args.benchmark
        else BENCHMARK_ORDER,
        scales=scales, max_workers=args.jobs,
        progress=_faults_progress if args.verbose else None)
    print(_render_faults_report(report))
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print("\nwrote %s" % args.json)
    return 0


def _cmd_bench_cache(args):
    """Scan the disk cache for damaged entries (``bench cache``)."""
    _configure_disk_cache(args)
    cache = result_cache.active_cache()
    if cache is None:
        print("disk cache is disabled")
        return 1
    if not args.verify:
        print("cache %s: %d entries for the current tree (%s)"
              % (cache.root, len(cache), cache.tree_hash))
        return 0
    report = cache.verify(quarantine=not args.no_quarantine)
    for path, reason in report["damaged"]:
        print("damaged: %s (%s)" % (path, reason))
    print("cache %s: %d scanned, %d valid, %d stale, %d damaged, "
          "%d quarantined" % (cache.root, report["scanned"],
                              report["valid"], report["stale"],
                              len(report["damaged"]),
                              report["quarantined"]))
    return 0


def _cmd_bench(args):
    if args.bench_command == "cache":
        return _cmd_bench_cache(args)
    """Perf-gate subcommands: regenerate or check the sweep baseline."""
    from repro.bench import gate
    from repro.bench.parallel import run_matrix_parallel

    _configure_disk_cache(args)
    records = run_matrix_parallel(max_workers=args.jobs)
    mismatches = verify_outputs_match(records)
    if mismatches:
        print("OUTPUT MISMATCH across configs: %s" % mismatches)
        return 1
    if args.bench_command == "baseline":
        gate.write_baseline(args.out, records)
        print("wrote %s (%d cells)" % (args.out,
                                       len(gate.collect_metrics(records))))
        return 0
    violations, report = gate.check(args.baseline, records,
                                    rel_tol=args.tolerance,
                                    abs_tol=args.abs_tolerance)
    print(report)
    return 1 if violations else 0


def _cmd_tables(args):
    print(experiments.table1())
    print()
    print(experiments.table6())
    print()
    print(experiments.table7())
    print()
    _summary, text = experiments.table8()
    print(text)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="typedarch",
        description="Typed Architectures (ASPLOS'17) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark", choices=BENCHMARK_ORDER)
    run_parser.add_argument("--engine", choices=("lua", "js"),
                            default="lua")
    run_parser.add_argument("--config", choices=CONFIGS, default="baseline")
    run_parser.add_argument("--scale", type=int, default=None)
    run_parser.add_argument("--model", choices=("fast", "scoreboard"),
                            default="fast",
                            help="timing model (see docs/SIMULATOR.md)")
    run_parser.add_argument("--no-blocks", action="store_true",
                            help="disable the basic-block "
                                 "superinstruction engine (counters are "
                                 "identical; simulation is slower)")
    run_parser.add_argument("--no-attribution", action="store_true",
                            help="skip per-bytecode attribution: "
                                 "fastest simulation (block engine), "
                                 "never cached")
    run_parser.add_argument("--fresh", action="store_true",
                            help="bypass the result caches for this run")
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep",
                                  help="full matrix + figures 2, 5-9")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="halve the input scales")
    sweep_parser.add_argument("--verbose", action="store_true")
    sweep_parser.add_argument("--json", metavar="PATH", default=None,
                              help="also dump all figure data as JSON")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              metavar="N",
                              help="worker processes (default: all "
                                   "cores; 1 forces the serial path)")
    sweep_parser.add_argument("--no-disk-cache", action="store_true",
                              help="skip the persistent result cache")
    sweep_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                              help="result cache location (default: "
                                   "$REPRO_CACHE_DIR or "
                                   "~/.cache/typedarch)")
    sweep_parser.add_argument("--smoke", action="store_true",
                              help="2-cell cold+warm parallel sweep "
                                   "against a temp cache (CI smoke)")
    sweep_parser.add_argument("--attribution", action="store_true",
                              help="also print per-benchmark cycle and "
                                   "TRT-miss attribution")
    sweep_parser.set_defaults(func=_cmd_sweep)

    tables_parser = sub.add_parser("tables",
                                   help="static tables and the hw model")
    tables_parser.set_defaults(func=_cmd_tables)

    trace_parser = sub.add_parser(
        "trace", help="instruction or bytecode execution trace")
    trace_parser.add_argument("benchmark", choices=BENCHMARK_ORDER)
    trace_parser.add_argument("--engine", choices=("lua", "js"),
                              default="lua")
    trace_parser.add_argument("--config", choices=CONFIGS,
                              default="baseline")
    trace_parser.add_argument("--scale", type=int, default=2)
    trace_parser.add_argument("--bytecodes", action="store_true",
                              help="trace bytecodes instead of "
                                   "instructions")
    trace_parser.add_argument("--limit", type=int, default=48,
                              help="trace entries kept (tail)")
    trace_parser.add_argument("--max-instructions", type=int,
                              default=200_000)
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = sub.add_parser(
        "profile",
        help="telemetry profile: per-opcode hot table, TRT attribution, "
             "optional Chrome trace")
    profile_parser.add_argument(
        "target",
        help="benchmark name (see `tables`) or path to a .lua/.js script")
    profile_parser.add_argument("--engine", choices=("lua", "js"),
                                default=None,
                                help="default: inferred from the target")
    profile_parser.add_argument("--config", choices=CONFIGS,
                                default=TYPED)
    profile_parser.add_argument("--scale", type=int, default=None,
                                help="input scale (benchmark targets)")
    profile_parser.add_argument("--top", type=int, default=15)
    profile_parser.add_argument("--chrome-trace", metavar="PATH",
                                default=None,
                                help="write a Perfetto-loadable Chrome "
                                     "trace_event JSON file")
    profile_parser.add_argument("--events", metavar="PATH", default=None,
                                help="write the raw event stream as "
                                     "JSON lines")
    profile_parser.add_argument("--buckets", action="store_true",
                                help="also print the per-handler "
                                     "instruction buckets")
    profile_parser.add_argument("--show-output", action="store_true",
                                help="echo the guest program's output")
    profile_parser.set_defaults(func=_cmd_profile)

    faults_parser = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign + coverage report")
    faults_parser.add_argument("--seed", type=int, default=1234)
    faults_parser.add_argument("--count", type=int, default=None,
                               metavar="N",
                               help="injections per (engine, benchmark, "
                                    "config) cell (default 40)")
    faults_parser.add_argument("--engine", action="append",
                               choices=("lua", "js"), default=None,
                               help="repeatable; default: both engines")
    faults_parser.add_argument("--benchmark", action="append",
                               choices=BENCHMARK_ORDER, default=None,
                               help="repeatable; default: all benchmarks")
    faults_parser.add_argument("--quick", action="store_true",
                               help="halve the input scales")
    faults_parser.add_argument("--jobs", type=int, default=None,
                               metavar="N",
                               help="worker processes (default: all "
                                    "cores; 1 forces the serial path)")
    faults_parser.add_argument("--json", metavar="PATH", default=None,
                               help="write the full campaign report")
    faults_parser.add_argument("--verbose", action="store_true")
    faults_parser.add_argument("--no-disk-cache", action="store_true",
                               help="skip the persistent result cache "
                                    "for the golden runs")
    faults_parser.add_argument("--cache-dir", metavar="DIR",
                               default=None)
    faults_parser.add_argument("--smoke", action="store_true",
                               help="tiny fixed-seed campaign at 1 and "
                                    "N jobs; asserts determinism and "
                                    "typed > baseline tag-plane "
                                    "detection (CI smoke)")
    faults_parser.set_defaults(func=_cmd_faults)

    bench_parser = sub.add_parser(
        "bench", help="performance gate against a committed baseline")
    bench_sub = bench_parser.add_subparsers(dest="bench_command",
                                            required=True)
    cache_parser = bench_sub.add_parser(
        "cache", help="inspect/verify the persistent result cache")
    cache_parser.add_argument("--verify", action="store_true",
                              help="decode every entry; quarantine "
                                   "damaged ones to <cache>/corrupt/")
    cache_parser.add_argument("--no-quarantine", action="store_true",
                              help="report damaged entries but leave "
                                   "them in place")
    cache_parser.add_argument("--no-disk-cache", action="store_true",
                              help=argparse.SUPPRESS)
    cache_parser.add_argument("--cache-dir", metavar="DIR", default=None)
    cache_parser.set_defaults(func=_cmd_bench)
    for name, description in (
            ("baseline", "run the sweep and write the baseline metrics"),
            ("check", "run the sweep and fail on metric drift")):
        cmd = bench_sub.add_parser(name, help=description)
        cmd.add_argument("--jobs", type=int, default=None, metavar="N")
        cmd.add_argument("--no-disk-cache", action="store_true")
        cmd.add_argument("--cache-dir", metavar="DIR", default=None)
        if name == "baseline":
            cmd.add_argument("--out", metavar="PATH",
                             default="benchmarks/results/baseline.json")
        else:
            cmd.add_argument("--baseline", metavar="PATH",
                             default="benchmarks/results/baseline.json")
            cmd.add_argument("--tolerance", type=float, default=0.02,
                             help="relative tolerance for speedups and "
                                  "instruction/cycle counts")
            cmd.add_argument("--abs-tolerance", type=float, default=0.05,
                             help="absolute tolerance for MPKI and "
                                  "hit-rate metrics")
        cmd.set_defaults(func=_cmd_bench)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
