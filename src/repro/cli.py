"""Command-line interface: ``typedarch`` (or ``python -m repro``).

Subcommands:

* ``run`` — run one benchmark on one engine/config and print counters,
* ``sweep`` — run the full matrix (sharded over ``--jobs`` workers,
  persisted in the disk cache unless ``--no-disk-cache``) and print
  Figures 5-9 (``--attribution`` adds per-benchmark attribution),
* ``tables`` — print the static tables (1, 6, 7) and the Table 8 model,
* ``trace`` — instruction/bytecode traces (telemetry-sink tracers),
* ``profile`` — per-opcode hot table, TRT-miss attribution and
  optional Chrome trace for a benchmark or a ``.lua``/``.js`` script,
* ``faults`` — seeded fault-injection campaign over the matrix with a
  detection-coverage report (``--smoke`` runs the deterministic CI
  campaign; see docs/RELIABILITY.md),
* ``bench baseline``/``bench check`` — the CI performance gate,
* ``bench cache --verify`` — scan the result cache, quarantining any
  corrupt or truncated entries to ``<cache>/corrupt/``,
* ``serve`` — the persistent execution daemon: warm forked workers
  behind a localhost socket (``--smoke`` runs the acceptance harness;
  see docs/API.md),
* ``route`` — the consistent-hash front router over N serve shards
  (``--shards N`` spawns and owns them; see docs/SERVING.md),
* ``loadgen`` — synthetic run/bench/sweep traffic at a target QPS
  with zipf-skewed popularity; writes ``BENCH_serve.json`` and holds
  the SLO gate (``--smoke`` boots a 2-shard router and is the CI
  ``serve-load`` job),
* ``bench slo`` — re-check a saved ``BENCH_serve.json`` artifact,
* ``submit`` — submit a benchmark, script or sweep to a running
  daemon or router (also ``--status``/``--drain``/``--ping`` verbs).

Flag conventions, uniform across subcommands: ``--jobs`` (worker
processes), ``--cache-dir``/``--no-disk-cache`` (the persistent
result cache), ``--smoke`` (tiny deterministic CI variant) and
``--json PATH`` (machine-readable report).  The old spellings
``--workers``, ``--cache`` and ``--json-out`` are kept as hidden
aliases.
"""

import argparse
import os
import sys

from repro.bench import cache as result_cache
from repro.bench import experiments
from repro.bench.runner import clear_cache, run_benchmark, \
    verify_outputs_match
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import BASELINE, GATE_CONFIGS, TYPED


def _config_arg(value):
    """``type=`` validator for every ``--config`` flag.

    Resolved against the live tagging-scheme registry at *parse* time
    — ``choices=CONFIGS`` captured an import-time snapshot, so schemes
    registered after :mod:`repro.cli` was imported were rejected.
    """
    from repro.engines import all_configs, is_registered
    if not is_registered(value):
        raise argparse.ArgumentTypeError(
            "unknown config %r (registered: %s)"
            % (value, ", ".join(all_configs())))
    return value


def _config_metavar():
    from repro.engines import all_configs
    return "{%s}" % ",".join(all_configs())


def _mix_arg(text):
    """``type=`` validator for ``loadgen --mix``: normalised
    ``op=weight`` pairs over run/bench/sweep."""
    mix = {}
    for part in text.split(","):
        name, sep, value = part.partition("=")
        name = name.strip()
        try:
            weight = float(value)
        except ValueError:
            weight = -1.0
        if not sep or name not in ("run", "bench", "sweep") \
                or weight < 0:
            raise argparse.ArgumentTypeError(
                "mix must be op=weight pairs over run/bench/sweep, "
                "e.g. run=0.6,bench=0.4 (got %r)" % text)
        mix[name] = weight
    total = sum(mix.values())
    if total <= 0:
        raise argparse.ArgumentTypeError("mix weights must sum > 0")
    return {name: weight / total for name, weight in mix.items()}


def _cmd_run(args):
    _configure_disk_cache(args)
    if args.smoke and args.scale is None:
        args.scale = 2
    record = None
    if args.model == "scoreboard":
        from repro.bench.workloads import workload
        from repro.uarch.scoreboard import ScoreboardMachine
        if args.engine == "lua":
            from repro.engines.lua import vm as engine_vm
        else:
            from repro.engines.js import vm as engine_vm
        spec = workload(args.benchmark)
        source = spec.lua_source(args.scale) if args.engine == "lua" \
            else spec.js_source(args.scale)
        cpu, runtime, _program = engine_vm.prepare(source, args.config)
        counters = ScoreboardMachine(cpu).run()
        output = "".join(runtime.output)
        counter_view = counters.as_dict()
    else:
        record = run_benchmark(args.engine, args.benchmark, args.config,
                               scale=args.scale,
                               use_blocks=not args.no_blocks,
                               use_traces=not args.no_traces,
                               attribute=not args.no_attribution,
                               use_cache=not args.fresh)
        output = record.output
        counter_view = record.counters.as_dict()
    sys.stdout.write(output)
    print("--- counters (%s model) ---" % args.model)
    for key, value in counter_view.items():
        if isinstance(value, dict):
            continue  # per-bytecode breakdowns; see ``profile``
        print("%-20s %s" % (key, value))
    if record is not None and record.wall_seconds:
        print("%-20s %.3f" % ("host_seconds", record.wall_seconds))
        print("%-20s %.3f" % ("simulated_mips", record.simulated_mips))
    if args.json:
        _write_json(args.json, {
            "engine": args.engine, "benchmark": args.benchmark,
            "config": args.config, "scale": args.scale,
            "model": args.model, "output": output,
            "counters": counter_view})
    return 0


def _progress_printer(event):
    engine, benchmark, config = event.key
    if event.cached:
        status = "cache hit"
        if event.mips:
            status += " (%.2f MIPS recorded)" % event.mips
    else:
        status = "%.2fs, %.0fk instr/s" % (event.seconds,
                                           event.throughput / 1000.0)
    print("[%3d/%d] %s/%s [%s] %s" % (event.completed, event.total,
                                      engine, benchmark, config, status),
          file=sys.stderr)


def _configure_disk_cache(args):
    if getattr(args, "no_disk_cache", False):
        result_cache.disable()
    else:
        result_cache.configure(getattr(args, "cache_dir", None))


# -- uniform flag spellings -------------------------------------------------
#
# Every subcommand accepts the same canonical flags where they apply:
# ``--jobs N``, ``--cache-dir DIR`` / ``--no-disk-cache``, ``--smoke``
# and ``--json PATH``.  The historical spellings ``--workers``,
# ``--cache`` and ``--json-out`` still parse, hidden from ``--help``.

def _hidden_alias(parser, flag, canonical, **kwargs):
    parser.add_argument(flag, dest=canonical, default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS, **kwargs)


def _add_jobs_flag(parser, help_text="worker processes (default: all "
                                     "cores; 1 forces the serial path)"):
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help=help_text)
    _hidden_alias(parser, "--workers", "jobs", type=int, metavar="N")


def _add_cache_flags(parser):
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/typedarch)")
    _hidden_alias(parser, "--cache", "cache_dir", metavar="DIR")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="skip the persistent result cache")


def _add_smoke_flag(parser, help_text):
    parser.add_argument("--smoke", action="store_true", help=help_text)


def _add_json_flag(parser, help_text):
    parser.add_argument("--json", metavar="PATH", default=None,
                        help=help_text)
    _hidden_alias(parser, "--json-out", "json", metavar="PATH")


def _add_slo_flags(parser):
    """SLO bound overrides, shared by ``loadgen`` and ``bench slo``
    (defaults live in :data:`repro.bench.gate.DEFAULT_SLO`)."""
    parser.add_argument("--p99-ms", type=float, default=None,
                        dest="p99_ms", metavar="MS",
                        help="p99 latency bound under load")
    parser.add_argument("--min-qps-fraction", type=float, default=None,
                        dest="min_qps_fraction", metavar="F",
                        help="sustained qps must reach F * target qps")
    parser.add_argument("--max-rejection-rate", type=float,
                        default=None, dest="max_rejection_rate",
                        metavar="F", help="busy rejection ceiling")
    parser.add_argument("--max-error-rate", type=float, default=None,
                        dest="max_error_rate", metavar="F",
                        help="hard error ceiling (default 0)")
    parser.add_argument("--max-drain-dropped", type=int, default=None,
                        dest="max_drain_dropped", metavar="N",
                        help="in-flight requests allowed to drop on "
                             "drain (default 0)")
    parser.add_argument("--no-identity", action="store_true",
                        help="skip the byte-identical sampled-replies "
                             "requirement")


def _add_chaos_slo_flags(parser):
    """Chaos SLO bound overrides, shared by ``chaos`` and ``bench
    slo`` (defaults live in
    :data:`repro.bench.gate.DEFAULT_CHAOS_SLO`)."""
    parser.add_argument("--max-lost", type=int, default=None,
                        dest="max_lost", metavar="N",
                        help="requests allowed to be lost under "
                             "faults (default 0)")
    parser.add_argument("--max-duplicated", type=int, default=None,
                        dest="max_duplicated", metavar="N",
                        help="duplicated terminal frames allowed "
                             "(default 0)")
    parser.add_argument("--max-mttr-seconds", type=float, default=None,
                        dest="max_mttr_seconds", metavar="SECONDS",
                        help="per-fault recovery time bound "
                             "(default 30)")
    parser.add_argument("--min-served", type=int, default=None,
                        dest="min_served", metavar="N",
                        help="served+retried floor that makes the run "
                             "meaningful (default 1)")
    parser.add_argument("--no-ring-full", action="store_true",
                        help="skip the ring-returns-to-full-strength "
                             "requirement")


def _chaos_slo_overrides(args):
    """Chaos SLO bound overrides actually set on the command line."""
    overrides = {}
    for name in ("max_lost", "max_duplicated", "max_mttr_seconds",
                 "min_served"):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    if getattr(args, "no_ring_full", False):
        overrides["require_ring_full"] = False
    return overrides


def _write_json(path, payload):
    import json
    from repro.schema import stamp
    with open(path, "w") as handle:
        json.dump(stamp(dict(payload)), handle, indent=1, sort_keys=True)
    print("wrote %s" % path)


def _cmd_sweep_smoke(args):
    """One-benchmark parallel sweep over *every* registered config
    against a throwaway disk cache: run cold, clear the memory cache,
    run warm, check the warm pass was pure cache hits with identical
    records, and render the N-config figure 5/9 tables (CI uploads
    the output as an artifact).  ``make sweep`` runs this."""
    import tempfile
    from repro.bench.parallel import run_matrix_parallel
    from repro.engines import all_configs

    configs = all_configs()
    kwargs = dict(engines=("lua",), benchmarks=("fibo",),
                  configs=configs, scales={"fibo": 8},
                  max_workers=args.jobs or 2)
    with tempfile.TemporaryDirectory() as tmp:
        with result_cache.temporary(args.cache_dir or tmp):
            clear_cache()
            cold, warm = [], []
            records = run_matrix_parallel(progress=cold.append, **kwargs)
            clear_cache()
            again = run_matrix_parallel(progress=warm.append, **kwargs)
    clear_cache()
    hits = sum(1 for event in warm if event.cached)
    identical = list(records) == list(again) and all(
        records[key].output == again[key].output
        and records[key].counters == again[key].counters
        for key in records)
    mismatches = verify_outputs_match(records)
    ok = identical and not mismatches \
        and len(records) == len(warm) == hits
    fig5 = experiments.figure5(records)
    fig9 = experiments.figure9(records)
    gradual = experiments.figure_gradual(records)
    print(experiments.render_figure5(fig5))
    print()
    print(experiments.render_figure9(fig9))
    print()
    if gradual:
        print(experiments.render_figure_gradual(gradual))
        print()
    print("sweep smoke: %d cells over %d configs (%s) | cold hits %d | "
          "warm hits %d/%d | records %s | outputs %s"
          % (len(records), len(configs), ", ".join(configs),
             sum(1 for event in cold if event.cached),
             hits, len(warm),
             "identical" if identical else "MISMATCH",
             "match" if not mismatches else "MISMATCH %s" % mismatches))
    print("sweep smoke: %s" % ("OK" if ok else "FAILED"))
    if args.json:
        _write_json(args.json, {"configs": list(configs),
                                "figure5": fig5, "figure9": fig9,
                                "gradual": gradual})
    return 0 if ok else 1


def _cmd_sweep(args):
    from repro.bench.parallel import run_matrix_parallel

    if args.smoke:
        return _cmd_sweep_smoke(args)
    _configure_disk_cache(args)
    scales = None
    if args.quick:
        scales = {name: max(2, spec.default_scale // 2)
                  for name, spec in
                  __import__("repro.bench.workloads",
                             fromlist=["WORKLOADS"]).WORKLOADS.items()}

    records = run_matrix_parallel(
        scales=scales, max_workers=args.jobs,
        progress=_progress_printer if args.verbose else None)
    mismatches = verify_outputs_match(records)
    if mismatches:
        print("OUTPUT MISMATCH across configs: %s" % mismatches)
        return 1
    print(experiments.render_figure2a(experiments.figure2a(records)))
    print()
    print(experiments.render_figure2b(experiments.figure2b(records)))
    print()
    print(experiments.render_figure5(experiments.figure5(records)))
    print()
    print(experiments.render_figure6(experiments.figure6(records)))
    print()
    print(experiments.render_figure7(experiments.figure7(records)))
    print()
    print(experiments.render_figure8(experiments.figure8(records)))
    print()
    print(experiments.render_figure9(experiments.figure9(records)))
    print()
    print(experiments.render_figure9_detail(
        experiments.figure9_detail(records)))
    print()
    gradual = experiments.figure_gradual(records)
    if gradual:
        print(experiments.render_figure_gradual(gradual))
        print()
    _summary, text = experiments.table8(records)
    print(text)
    if args.attribution:
        print()
        print(experiments.render_attribution(
            experiments.attribution(records)))
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(experiments.to_json(records), handle, indent=1,
                      sort_keys=True)
        print("\nwrote %s" % args.json)
    return 0


def _cmd_trace(args):
    if args.engine == "lua":
        from repro.engines.lua import vm as engine_vm
    else:
        from repro.engines.js import vm as engine_vm
    from repro.bench.workloads import workload
    from repro.sim.trace import BytecodeTracer, InstructionTracer

    spec = workload(args.benchmark)
    source = spec.lua_source(args.scale) if args.engine == "lua" \
        else spec.js_source(args.scale)
    cpu, runtime, program = engine_vm.prepare(source, args.config)
    if args.bytecodes:
        _prog, attribution = engine_vm.interpreter_program(args.config)
        entry_points = {
            program.base + 4 * index: attribution.entry_names[entry_id]
            for index, entry_id in enumerate(attribution.entry_of)
            if entry_id >= 0}
        tracer = BytecodeTracer(cpu, entry_points, limit=args.limit)
        tracer.run(max_instructions=args.max_instructions)
        print(tracer.format())
        print()
        for name, count in sorted(tracer.counts.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            print("%-12s %d" % (name, count))
    else:
        tracer = InstructionTracer(cpu, limit=args.limit)
        tracer.run(max_instructions=args.max_instructions)
        print(tracer.format())
    sys.stdout.write(("".join(runtime.output)) and
                     "--- output ---\n" + "".join(runtime.output) or "")
    if args.json:
        payload = {"benchmark": args.benchmark, "engine": args.engine,
                   "config": args.config, "scale": args.scale,
                   "trace": tracer.format()}
        if args.bytecodes:
            payload["counts"] = dict(tracer.counts)
        _write_json(args.json, payload)
    return 0


def _cmd_profile(args):
    """Telemetry-backed profile: per-opcode hot table and TRT
    attribution for one benchmark or a ``.lua``/``.js`` script."""
    from repro.telemetry import (render_opcode_table, render_trt_table,
                                 run_profile)

    if args.smoke and args.scale is None:
        args.scale = 2
    result = run_profile(args.target, engine=args.engine,
                         config=args.config, scale=args.scale,
                         chrome_trace=args.chrome_trace,
                         events_path=args.events)
    print(render_opcode_table(result, top=args.top))
    print()
    print(render_trt_table(result, top=args.top))
    if args.buckets:
        counters = result.counters
        total = counters.core_instructions
        print()
        print("%-28s %12s %7s" % ("handler bucket", "instructions",
                                  "share"))
        print("-" * 49)
        shown = 0
        buckets = sorted(counters.bucket_instructions.items(),
                         key=lambda kv: (-kv[1], kv[0]))
        for name, instructions in buckets[:args.top]:
            if not instructions:
                break
            shown += instructions
            print("%-28s %12d %6.1f%%" % (name, instructions,
                                          100.0 * instructions / total))
        print("%-28s %12d %6.1f%%" % ("(other)", total - shown,
                                      100.0 * (total - shown) / total))
    if args.chrome_trace:
        print("\nwrote Chrome trace: %s (load in Perfetto or "
              "chrome://tracing)" % args.chrome_trace)
    if args.events:
        print("wrote event log: %s" % args.events)
    if args.show_output and result.output:
        sys.stdout.write("--- output ---\n" + result.output)
    if args.json:
        _write_json(args.json, {
            "target": args.target, "engine": args.engine,
            "config": args.config, "scale": args.scale,
            "counters": result.counters.as_dict(),
            "opcode_table": render_opcode_table(result, top=args.top),
            "trt_table": render_trt_table(result, top=args.top)})
    return 0


def _render_faults_report(report):
    lines = []
    classes = report["classes"]
    total = sum(classes.values()) or 1
    lines.append("fault campaign: seed %d, %d injections per cell, "
                 "%d total" % (report["seed"], report["count_per_cell"],
                               sum(classes.values())))
    lines.append("  " + "  ".join("%s %d (%.1f%%)"
                                  % (name, count, 100.0 * count / total)
                                  for name, count in classes.items()))
    lines.append("")
    lines.append("detection coverage (detected/total) by config x target:")
    targets = report["targets"]
    width = max([len("config")]
                + [len(config) for config in report["coverage"]])
    header = "%-*s" % (width, "config") \
        + "".join("%14s" % t for t in targets)
    lines.append(header)
    lines.append("-" * len(header))
    for config, coverage in report["coverage"].items():
        row = "%-*s" % (width, config)
        for target in targets:
            cell = coverage.get(target)
            row += "%14s" % ("%d/%d" % (cell["detected"], cell["total"])
                             if cell else "-")
        lines.append(row)
    return "\n".join(lines)


def _faults_progress(done, total, result):
    spec = result["spec"]
    print("[%3d/%d] %s@%d -> %s" % (done, total, spec["target"],
                                    spec["index"], result["class"]),
          file=sys.stderr)


def _cmd_faults_smoke(args):
    """Tiny fixed-seed campaign run at --jobs 1 and --jobs 2: asserts
    the reports are byte-identical (determinism across worker counts)
    and that every config whose scheme declares hardware type checks
    detects strictly more injected tag-plane corruptions than
    baseline.  ``make faults-smoke`` runs this."""
    import json
    import tempfile
    from repro.engines import hardware_check_configs
    from repro.faults import run_campaign

    kwargs = dict(seed=args.seed, count=args.count or 25,
                  engines=("lua",), benchmarks=("fibo",),
                  scales={"fibo": 10})
    with tempfile.TemporaryDirectory() as tmp:
        with result_cache.temporary(args.cache_dir or tmp):
            clear_cache()
            serial = run_campaign(max_workers=1, **kwargs)
            clear_cache()
            parallel = run_campaign(max_workers=args.jobs or 2, **kwargs)
    clear_cache()
    identical = json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)

    def tag_detections(config):
        return serial["coverage"].get(config, {}).get("mem_tag", {}) \
            .get("detected", 0)

    # Derived from the registry, not a hard-coded ("typed", "chklb")
    # tuple, so newly registered hardware-checked schemes are covered
    # automatically.
    detect_configs = hardware_check_configs()
    base_hits = tag_detections("baseline")
    tag_margin = all(tag_detections(config) > base_hits
                     for config in detect_configs)

    def cell_for(config):
        for cell in serial["cells"]:
            if cell["config"] == config:
                return cell
        return None

    # Guard elision and the software baseline face the identical fault
    # sequence; the reliability cost of removing guards is a *shift
    # within SDC*: the guards' guest-visible aborts disappear and
    # truly silent corruptions appear (see docs/ANALYSIS.md).
    base_cell, elided_cell = cell_for("baseline"), cell_for("elided")
    elision_shift = True  # vacuous without both software cells
    if base_cell is not None and elided_cell is not None:
        base_sdc, elided_sdc = (base_cell["sdc_detail"],
                                elided_cell["sdc_detail"])
        elision_shift = (elided_sdc["silent"] > base_sdc["silent"]
                         and elided_sdc["abort"] < base_sdc["abort"])
    print(_render_faults_report(serial))
    print()
    print("faults smoke: reports %s | tag-plane detections %s "
          "> baseline %d: %s"
          % ("identical" if identical else "MISMATCH",
             " / ".join("%s %d" % (config, tag_detections(config))
                        for config in detect_configs),
             base_hits, "yes" if tag_margin else "NO"))
    if base_cell is not None and elided_cell is not None:
        print("faults smoke: elision SDC shift "
              "(silent %d -> %d, guard aborts %d -> %d): %s"
              % (base_sdc["silent"], elided_sdc["silent"],
                 base_sdc["abort"], elided_sdc["abort"],
                 "yes" if elision_shift else "NO"))
    ok = identical and tag_margin and elision_shift
    print("faults smoke: %s" % ("OK" if ok else "FAILED"))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(serial, handle, indent=1, sort_keys=True)
        print("wrote %s" % args.json)
    return 0 if ok else 1


def _cmd_faults(args):
    from repro.faults import run_campaign

    if args.smoke:
        return _cmd_faults_smoke(args)
    _configure_disk_cache(args)
    scales = None
    if args.quick:
        scales = {name: max(2, spec.default_scale // 2)
                  for name, spec in
                  __import__("repro.bench.workloads",
                             fromlist=["WORKLOADS"]).WORKLOADS.items()}
    report = run_campaign(
        seed=args.seed, count=args.count or 40,
        engines=tuple(args.engine) if args.engine else ("lua", "js"),
        benchmarks=tuple(args.benchmark) if args.benchmark
        else BENCHMARK_ORDER,
        scales=scales, max_workers=args.jobs,
        progress=_faults_progress if args.verbose else None)
    print(_render_faults_report(report))
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print("\nwrote %s" % args.json)
    return 0


def _cmd_bench_cache(args):
    """Scan the disk cache for damaged entries (``bench cache``)."""
    _configure_disk_cache(args)
    cache = result_cache.active_cache()
    if cache is None:
        print("disk cache is disabled")
        return 1
    if not args.verify:
        print("cache %s: %d entries for the current tree (%s)"
              % (cache.root, len(cache), cache.tree_hash))
        return 0
    report = cache.verify(quarantine=not args.no_quarantine)
    for path, reason in report["damaged"]:
        print("damaged: %s (%s)" % (path, reason))
    print("cache %s: %d scanned, %d valid, %d stale, %d damaged, "
          "%d quarantined" % (cache.root, report["scanned"],
                              report["valid"], report["stale"],
                              len(report["damaged"]),
                              report["quarantined"]))
    return 0


def _cmd_bench(args):
    if args.bench_command == "cache":
        return _cmd_bench_cache(args)
    if args.bench_command == "slo":
        return _cmd_bench_slo(args)
    """Perf-gate subcommands: regenerate or check the sweep baseline."""
    from repro.bench import gate
    from repro.bench.parallel import run_matrix_parallel

    if args.bench_command == "check" and args.smoke:
        # Compatibility probe only: the committed baseline must load
        # under the current SCHEMA_VERSION.  No sweep is run.
        try:
            payload = gate.load_baseline(args.baseline)
        except (OSError, ValueError) as err:
            print("bench check smoke: %s" % err)
            return 1
        print("bench check smoke: %s loads (%d metrics, schema v%d): OK"
              % (args.baseline, len(payload.get("metrics", {})),
                 gate.BASELINE_VERSION))
        return 0
    _configure_disk_cache(args)
    # The gate is pinned to the original config triple (see
    # repro.bench.gate): sweeping additionally registered schemes here
    # would only burn time on cells the metric comparison ignores.
    records = run_matrix_parallel(configs=GATE_CONFIGS,
                                  max_workers=args.jobs)
    mismatches = verify_outputs_match(records)
    if mismatches:
        print("OUTPUT MISMATCH across configs: %s" % mismatches)
        return 1
    if args.bench_command == "baseline":
        gate.write_baseline(args.out, records)
        print("wrote %s (%d cells)" % (args.out,
                                       len(gate.collect_metrics(records))))
        return 0
    violations, report = gate.check(args.baseline, records,
                                    rel_tol=args.tolerance,
                                    abs_tol=args.abs_tolerance)
    print(report)
    # Advisory only: printed (and optionally exported for CI upload)
    # but never part of the exit code — host timing is noisy where the
    # simulated metrics above are deterministic.
    _ok, floor_text, floor_details = gate.check_host_floor(records)
    print(floor_text)
    if args.host_floor_json and floor_details is not None:
        _write_json(args.host_floor_json, floor_details)
    return 1 if violations else 0


def _cmd_serve_smoke(args):
    """The serve acceptance harness (``repro serve --smoke``; CI runs
    it as the ``serve-smoke`` job).  Boots the daemon as a subprocess
    and checks the three acceptance properties:

    1. a ``bench`` request answered from the persistent result cache
       returns ``cached`` without ever building the worker pool,
    2. three concurrent ``run`` clients get counters byte-identical
       to an in-process :func:`repro.api.run` of the same source,
    3. SIGTERM drains the in-flight request before the daemon exits 0.
    """
    import json
    import signal as signal_mod
    import subprocess
    import tempfile
    import threading
    import time

    import repro
    from repro import api
    from repro.serve.client import ServeClient

    checks = {}
    proc = None
    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "serve.sock")
        cache_dir = args.cache_dir or os.path.join(tmp, "cache")

        # Seed one bench cell into the disk cache the daemon will use.
        with result_cache.temporary(cache_dir):
            clear_cache()
            seeded = api.run("lua", "fibo", scale=6, config=TYPED)
        clear_cache()

        pkg_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = pkg_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = cache_dir
        jobs = 2 if args.jobs is None else args.jobs
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", sock, "--jobs", str(jobs),
                 "--queue-depth", "8"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT)

            deadline = time.monotonic() + 60
            while not os.path.exists(sock):
                if proc.poll() is not None or time.monotonic() > deadline:
                    out = proc.stdout.read().decode("utf-8", "replace") \
                        if proc.poll() is not None else ""
                    print("serve smoke: daemon failed to start\n%s" % out)
                    return 1
                time.sleep(0.05)

            # 1. Cache hit first: the pool must still be cold after it.
            with ServeClient(socket_path=sock, timeout=120) as client:
                hit = client.run("lua", "fibo", scale=6, config=TYPED)
                stats = client.status()
            checks["bench_cache_hit_no_worker"] = (
                hit.ok and hit.cached
                and hit.counters.as_dict() == seeded.counters.as_dict()
                and stats["pool"]["builds"] == 0
                and stats["pool"]["executed"] == 0)

            # 2. Three concurrent run clients, byte-identical counters.
            src = ("local s = 0\n"
                   "for i = 1, 2000 do s = s + i end\n"
                   "print(s)\n")
            expected = api.run("lua", src, config=TYPED)
            expected_blob = json.dumps(expected.counters.as_dict(),
                                       sort_keys=True)
            results = [None] * 3
            errors = []

            def one_client(index):
                try:
                    with ServeClient(socket_path=sock,
                                     timeout=120) as client:
                        results[index] = client.run("lua", src,
                                                    config=TYPED)
                except Exception as err:  # noqa: BLE001 - report below
                    errors.append(err)

            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(180)
            checks["concurrent_identical_counters"] = (
                not errors and all(
                    result is not None and result.ok
                    and json.dumps(result.counters.as_dict(),
                                   sort_keys=True) == expected_blob
                    for result in results))
            if errors:
                print("serve smoke: concurrent client errors: %s"
                      % errors, file=sys.stderr)

            # 3. SIGTERM mid-flight: the result must still arrive and
            #    the daemon must exit cleanly once drained.
            slow_src = ("local s = 0\n"
                        "for i = 1, 120000 do s = s + i end\n"
                        "print(s)\n")
            started = threading.Event()
            box = {}

            def on_event(frame):
                if frame.get("event") == "started":
                    started.set()

            def slow_client():
                try:
                    with ServeClient(socket_path=sock,
                                     timeout=300) as client:
                        box["result"] = client.run(
                            "lua", slow_src, config=TYPED,
                            on_event=on_event)
                except Exception as err:  # noqa: BLE001 - report below
                    box["error"] = err

            thread = threading.Thread(target=slow_client)
            thread.start()
            if not started.wait(120):
                box.setdefault("error", "request never started")
            proc.send_signal(signal_mod.SIGTERM)
            thread.join(300)
            exit_code = proc.wait(timeout=120)
            drained = box.get("result")
            checks["sigterm_drains_inflight"] = (
                drained is not None and drained.ok and exit_code == 0)
            if "error" in box:
                print("serve smoke: drain client error: %s" % box["error"],
                      file=sys.stderr)
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
            if proc is not None and proc.stdout is not None:
                proc.stdout.close()

    ok = all(checks.values()) and len(checks) == 3
    for name in sorted(checks):
        print("serve smoke: %-32s %s" % (name,
                                         "ok" if checks[name] else "FAIL"))
    print("serve smoke: %s" % ("OK" if ok else "FAILED"))
    if args.json:
        _write_json(args.json, {"ok": ok, "checks": checks, "jobs": jobs})
    return 0 if ok else 1


def _cmd_serve(args):
    if args.smoke:
        return _cmd_serve_smoke(args)
    import asyncio
    import logging

    from repro.serve.server import serve as serve_daemon

    _configure_disk_cache(args)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    workers = 2 if args.jobs is None else args.jobs
    if args.port is not None:
        socket_path, host = None, args.host or "127.0.0.1"
    else:
        socket_path, host = args.socket, None
        if socket_path == "auto":
            # Collision-free pick (fresh mkdtemp directory), so
            # parallel CI jobs can each boot a daemon without racing
            # for one well-known path.
            from repro.serve.server import free_socket_path
            socket_path = free_socket_path()

    def ready(server):
        where = server.socket_path or "%s:%d" % (server.host,
                                                 server.bound_port)
        print("serving on %s (workers=%d, queue depth %d)"
              % (where, workers, args.queue_depth), file=sys.stderr,
              flush=True)

    asyncio.run(serve_daemon(
        socket_path=socket_path, host=host, port=args.port, ready=ready,
        workers=workers, queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        warm_engines=tuple(args.warm_engine or ("lua", "js")),
        warm_configs=tuple(args.warm_config) if args.warm_config
        else None))
    return 0


def _cmd_route(args):
    """The consistent-hash front router (``repro route``): fronts
    existing shards (``--shard``, repeatable) and/or spawns and owns
    its own (``--shards N``)."""
    import asyncio
    import logging

    from repro.serve.router import ShardManager, ShardSpec, route
    from repro.serve.server import free_socket_path

    if not args.shard and not args.shards:
        print("route: give --shard ADDR (repeatable) for existing "
              "shards, or --shards N to spawn them", file=sys.stderr)
        return 2
    _configure_disk_cache(args)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")

    socket_path, host, port = args.socket, None, None
    if args.port is not None:
        socket_path, host, port = None, args.host or "127.0.0.1", \
            args.port
    elif socket_path in (None, "auto"):
        socket_path = free_socket_path("typedarch-route")

    try:
        specs = [ShardSpec.parse(item) for item in args.shard or ()]
    except ValueError as err:
        print("route: %s" % err, file=sys.stderr)
        return 2
    manager = None
    supervisor = None
    exit_code = 0
    try:
        if args.shards:
            manager = ShardManager(
                args.shards, jobs=1 if args.jobs is None else args.jobs,
                queue_depth=args.queue_depth, cache_dir=args.cache_dir,
                deadline=args.deadline,
                warm_engines=tuple(args.warm_engine or ("lua",)),
                warm_configs=tuple(args.warm_config)
                if args.warm_config else None)
            manager.start()
            specs = specs + list(manager.specs)
            if not args.no_supervise:
                # Owned shards are supervised: a dead shard process is
                # respawned (exponential backoff, crash-loop circuit
                # breaker) and rejoins the ring once probes pass.
                from repro.serve.supervisor import ShardSupervisor
                supervisor = ShardSupervisor(manager).start()

        def ready(server):
            where = server.socket_path or "%s:%d" % (server.host,
                                                     server.bound_port)
            print("routing on %s across %d shard(s)%s"
                  % (where, len(specs),
                     " [supervised]" if supervisor else ""),
                  file=sys.stderr, flush=True)

        asyncio.run(route(
            specs, socket_path=socket_path, host=host, port=port,
            ready=ready, replicas=args.replicas,
            health_interval=args.health_interval,
            busy_retries=args.retries, supervisor=supervisor,
            attempt_timeout=args.attempt_timeout, quorum=args.quorum))
    finally:
        if supervisor is not None:
            supervisor.stop()
        if manager is not None:
            codes = manager.drain()
            if any(codes):
                print("route: shard exit codes %s" % codes,
                      file=sys.stderr)
                exit_code = 1
    return exit_code


def _slo_overrides(args):
    """SLO bound overrides from the shared ``--p99-ms``-family flags
    (only the ones the user actually set)."""
    overrides = {}
    for name in ("p99_ms", "min_qps_fraction", "max_rejection_rate",
                 "max_error_rate", "max_drain_dropped"):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    if getattr(args, "no_identity", False):
        overrides["require_identity"] = False
    return overrides


def _render_load_report(report):
    traffic = report["traffic"]
    latency = report["latency_ms"]
    identity = report["identity"]
    drain = report["drain"]
    lines = [
        "loadgen: %d offered at %.1f qps | %d completed | %d rejected "
        "| %d errors" % (traffic["offered"], report["spec"]["qps"],
                         traffic["completed"], traffic["rejected"],
                         traffic["errors"]),
        "loadgen: sustained %.2f qps over %.2fs | p50 %.0fms  p95 "
        "%.0fms  p99 %.0fms" % (report["sustained_qps"],
                                report["elapsed_seconds"],
                                latency["p50"], latency["p95"],
                                latency["p99"]),
        "loadgen: cache hit rate %.1f%% | coalesced %.1f%% | rejection "
        "rate %.1f%%" % (100.0 * report["cache_hit_rate"],
                         100.0 * report["coalesced_rate"],
                         100.0 * report["rejection_rate"]),
        "loadgen: identity %d/%d sampled replies byte-identical"
        % (identity["matched"], identity["sampled"]),
    ]
    if drain["checked"]:
        lines.append("loadgen: drain with %d in flight dropped %d"
                     % (drain["inflight_at_drain"], drain["dropped"]))
    return "\n".join(lines)


def _cmd_loadgen(args):
    """``repro loadgen``: synthetic traffic against a router or
    daemon, a ``BENCH_serve.json`` artifact and the SLO gate.
    ``--smoke`` self-boots a 2-shard routed tier (the CI
    ``serve-load`` job)."""
    import json
    import logging
    import tempfile

    from repro.bench import gate
    from repro.serve import loadgen

    handler = None
    if args.router_log:
        handler = logging.FileHandler(args.router_log, mode="w")
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s"))
        tier_log = logging.getLogger("repro.serve")
        tier_log.addHandler(handler)
        if tier_log.level in (logging.NOTSET, logging.WARNING):
            tier_log.setLevel(logging.INFO)

    spec_kwargs = {}
    if args.smoke:
        # Sized for CI: ~48 requests over ~6s against 2 one-worker
        # shards, lua only, two configs (cheap pool warm-up).
        spec_kwargs.update(qps=8.0, duration=6.0, keys=12, threads=12,
                           configs=(BASELINE, TYPED))
    for name, value in (("qps", args.qps), ("duration", args.duration),
                        ("keys", args.keys), ("zipf_s", args.zipf),
                        ("seed", args.seed), ("threads", args.threads),
                        ("sample", args.sample),
                        ("timeout", args.timeout)):
        if value is not None:
            spec_kwargs[name] = value
    if args.mix:
        spec_kwargs["mix"] = args.mix
    if args.engine:
        spec_kwargs["engines"] = tuple(args.engine)
    if args.config:
        spec_kwargs["configs"] = tuple(args.config)
    spec = loadgen.LoadSpec(**spec_kwargs)

    json_path = args.json
    if args.smoke and json_path is None:
        json_path = "BENCH_serve.json"
    try:
        if args.smoke and args.socket is None and args.port is None:
            shards = args.shards or 2
            with tempfile.TemporaryDirectory() as tmp:
                cache_dir = args.cache_dir \
                    or os.path.join(tmp, "cache")
                # The router thread lives in *this* process: point its
                # cache probe (and the identity re-execution) at the
                # tier's shared root.
                with result_cache.temporary(cache_dir):
                    clear_cache()
                    tier = loadgen.LocalTier(
                        shards, jobs=1 if args.jobs is None
                        else args.jobs,
                        queue_depth=16, cache_dir=cache_dir,
                        warm_engines=spec.engines,
                        warm_configs=spec.resolved_configs(),
                        log_dir=tmp)
                    print("loadgen: booting %d-shard routed tier..."
                          % shards, file=sys.stderr, flush=True)
                    with tier:
                        report = loadgen.run_load(
                            spec, socket_path=tier.socket_path,
                            drain_check=not args.no_drain)
                    if tier.shard_exit_codes \
                            and any(tier.shard_exit_codes):
                        print("loadgen: shard exit codes %s"
                              % tier.shard_exit_codes, file=sys.stderr)
                clear_cache()
        else:
            if args.socket is None and args.port is None:
                print("loadgen: give --socket/--host/--port of a "
                      "running router or daemon, or use --smoke",
                      file=sys.stderr)
                return 2
            _configure_disk_cache(args)
            report = loadgen.run_load(
                spec, socket_path=args.socket,
                host=args.host if args.port else None, port=args.port,
                drain_check=not args.no_drain)
    finally:
        if handler is not None:
            logging.getLogger("repro.serve").removeHandler(handler)
            handler.close()
            print("wrote %s" % args.router_log)

    stamped = loadgen.make_report(report)
    print(_render_load_report(report))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(stamped, handle, indent=1, sort_keys=True)
        print("wrote %s" % json_path)
    violations, text = gate.check_slo(stamped, **_slo_overrides(args))
    print(text)
    return 1 if violations else 0


def _cmd_bench_slo(args):
    """Re-check a saved serving artifact (``bench slo``): dispatches
    on the artifact's ``kind`` — ``serve-load`` (BENCH_serve.json)
    through the serving SLO, ``chaos`` (BENCH_chaos.json) through the
    chaos SLO."""
    import json

    from repro.bench import gate

    try:
        with open(args.report) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as err:
        print("bench slo: cannot read %s: %s" % (args.report, err))
        return 1
    if isinstance(payload, dict) and payload.get("kind") == "chaos":
        violations, text = gate.check_chaos(
            payload, **_chaos_slo_overrides(args))
    else:
        violations, text = gate.check_slo(payload,
                                          **_slo_overrides(args))
    print(text)
    return 1 if violations else 0


def _cmd_chaos(args):
    """``repro chaos``: boot a supervised routed tier, replay loadgen
    traffic under a seed-deterministic fault schedule (shard SIGKILL,
    SIGSTOP stall, black-holed socket, cache corruption), classify
    every request, measure per-fault MTTR, write ``BENCH_chaos.json``
    and hold the chaos SLO gate.  ``--smoke`` pins the CI
    ``chaos-smoke`` configuration."""
    import json
    import logging
    import tempfile

    from repro.bench import gate
    from repro.serve import chaos as chaos_mod
    from repro.serve import loadgen

    handler = None
    if args.router_log:
        handler = logging.FileHandler(args.router_log, mode="w")
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s"))
        tier_log = logging.getLogger("repro.serve")
        tier_log.addHandler(handler)
        if tier_log.level in (logging.NOTSET, logging.WARNING):
            tier_log.setLevel(logging.INFO)

    load_kwargs = {}
    if args.smoke:
        # Sized for CI: ~60 requests over ~10s against 2 one-worker
        # shards with a kill and a stall landing mid-load.
        load_kwargs.update(qps=6.0, duration=10.0, keys=10,
                           threads=12, configs=(BASELINE, TYPED))
    for name, value in (("qps", args.qps), ("duration", args.duration),
                        ("keys", args.keys), ("threads", args.threads),
                        ("timeout", args.timeout)):
        if value is not None:
            load_kwargs[name] = value
    if args.config:
        load_kwargs["configs"] = tuple(args.config)

    chaos_kwargs = {"load": loadgen.LoadSpec(**load_kwargs)}
    for name, value in (("seed", args.seed), ("shards", args.shards),
                        ("stall_seconds", args.stall_seconds),
                        ("blackhole_seconds", args.blackhole_seconds),
                        ("attempt_timeout", args.attempt_timeout),
                        ("recovery_timeout", args.recovery_timeout)):
        if value is not None:
            chaos_kwargs[name] = value
    if args.faults:
        chaos_kwargs["faults"] = tuple(
            kind.strip() for kind in args.faults.split(",")
            if kind.strip())
    try:
        spec = chaos_mod.ChaosSpec(**chaos_kwargs)
        chaos_mod.build_fault_schedule(spec)  # validate fault kinds
    except ValueError as err:
        print("chaos: %s" % err, file=sys.stderr)
        return 2

    json_path = args.json
    if args.smoke and json_path is None:
        json_path = "BENCH_chaos.json"
    done = {"count": 0}

    def progress(_record):
        done["count"] += 1
        if done["count"] % 20 == 0:
            print("chaos: %d requests classified" % done["count"],
                  file=sys.stderr, flush=True)

    try:
        with tempfile.TemporaryDirectory() as tmp:
            cache_dir = args.cache_dir or os.path.join(tmp, "cache")
            log_dir = args.log_dir or tmp
            os.makedirs(log_dir, exist_ok=True)
            # The router thread lives in *this* process: its cache
            # probe must see the tier's shared root.
            with result_cache.temporary(cache_dir):
                clear_cache()
                print("chaos: booting supervised %d-shard tier "
                      "(faults: %s)..."
                      % (spec.shards, ", ".join(spec.faults)),
                      file=sys.stderr, flush=True)
                report = chaos_mod.run_chaos(
                    spec, cache_dir=cache_dir, log_dir=log_dir,
                    progress=progress)
            clear_cache()
    finally:
        if handler is not None:
            logging.getLogger("repro.serve").removeHandler(handler)
            handler.close()
            print("wrote %s" % args.router_log)

    stamped = chaos_mod.make_chaos_report(report)
    print(chaos_mod.render_report(report))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(stamped, handle, indent=1, sort_keys=True)
        print("wrote %s" % json_path)
    violations, text = gate.check_chaos(stamped,
                                        **_chaos_slo_overrides(args))
    print(text)
    return 1 if violations else 0


def _cmd_submit(args):
    import json

    from repro.api import DEFAULT_PRIORITY, ExecutionRequest
    from repro.serve.client import ServeBusy, ServeClient, ServeError

    on_event = None
    if args.verbose:
        def on_event(frame):
            print("event: %s" % json.dumps(frame, sort_keys=True),
                  file=sys.stderr)

    wants_control = args.ping or args.status or args.drain
    if args.target is None and not (wants_control or args.sweep):
        print("submit: a target (benchmark, script path, '-' or inline "
              "source) or --sweep/--status/--drain/--ping is required",
              file=sys.stderr)
        return 2

    client = ServeClient(socket_path=args.socket,
                         host=args.host if args.port else None,
                         port=args.port, timeout=args.timeout)
    try:
        with client:
            if args.ping:
                print("pong" if client.ping() else "schema mismatch")
                return 0
            if args.status or args.drain:
                stats = client.drain() if args.drain else client.status()
                print(json.dumps(stats, indent=1, sort_keys=True))
                return 0

            priority = DEFAULT_PRIORITY if args.priority is None \
                else args.priority
            if args.sweep:
                request = ExecutionRequest(
                    op="sweep", jobs=args.jobs, deadline=args.deadline,
                    priority=priority)
                result = client.submit(request, on_event=on_event)
            else:
                target, engine = args.target, args.engine
                if target in BENCHMARK_ORDER:
                    source = target
                elif target == "-":
                    source = sys.stdin.read()
                elif target.endswith(".lua") or target.endswith(".js"):
                    with open(target) as handle:
                        source = handle.read()
                    engine = engine or ("js" if target.endswith(".js")
                                        else "lua")
                else:
                    source = target
                scale = args.scale
                if args.smoke and scale is None:
                    scale = 2
                result = client.run(
                    engine or "lua", source, config=args.config,
                    scale=scale, deadline=args.deadline,
                    priority=priority, on_event=on_event)
    except ServeBusy as err:
        print("busy: %s (retry after %.1fs)"
              % (err, err.retry_after or 0.0), file=sys.stderr)
        return 75  # EX_TEMPFAIL
    except ServeError as err:
        print("error: %s" % err, file=sys.stderr)
        return 1
    except (ConnectionError, FileNotFoundError, OSError) as err:
        print("cannot reach the daemon: %s (is `repro serve` running?)"
              % err, file=sys.stderr)
        return 1

    if args.json:
        _write_json(args.json, result.as_dict())
    if not result.ok:
        print("execution failed: %s" % result.error, file=sys.stderr)
        return 1
    if result.op == "sweep":
        print("sweep complete: %d cells%s"
              % (len(result.cells or {}),
                 " (coalesced)" if result.coalesced else ""))
        if not args.json:
            print("(use --json PATH for the per-cell metrics)")
        return 0
    sys.stdout.write(result.output or "")
    origin = "cached" if result.cached else "served"
    if result.coalesced:
        origin += ", coalesced"
    print("--- counters (%s) ---" % origin)
    for key, value in result.counters.as_dict().items():
        if isinstance(value, dict):
            continue  # per-bytecode breakdowns; see ``profile``
        print("%-20s %s" % (key, value))
    return 0


def _cmd_tables(args):
    _summary, table8_text = experiments.table8()
    sections = (("table1", experiments.table1()),
                ("table6", experiments.table6()),
                ("table7", experiments.table7()),
                ("table8", table8_text))
    print("\n\n".join(text for _name, text in sections))
    if args.json:
        _write_json(args.json, dict(sections))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="typedarch",
        description="Typed Architectures (ASPLOS'17) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark", choices=BENCHMARK_ORDER)
    run_parser.add_argument("--engine", choices=("lua", "js"),
                            default="lua")
    run_parser.add_argument("--config", type=_config_arg,
                            metavar=_config_metavar(),
                            default="baseline")
    run_parser.add_argument("--scale", type=int, default=None)
    run_parser.add_argument("--model", choices=("fast", "scoreboard"),
                            default="fast",
                            help="timing model (see docs/SIMULATOR.md)")
    run_parser.add_argument("--no-blocks", action="store_true",
                            help="disable the basic-block "
                                 "superinstruction engine (counters are "
                                 "identical; simulation is slower)")
    run_parser.add_argument("--no-traces", action="store_true",
                            help="disable the superblock trace engine "
                                 "(counters are identical; simulation "
                                 "is slower)")
    run_parser.add_argument("--no-attribution", action="store_true",
                            help="skip per-bytecode attribution: "
                                 "fastest simulation (block engine), "
                                 "never cached")
    run_parser.add_argument("--fresh", action="store_true",
                            help="bypass the result caches for this run")
    _add_jobs_flag(run_parser, help_text="accepted for flag uniformity; "
                                         "a single run is one process")
    _add_cache_flags(run_parser)
    _add_smoke_flag(run_parser, "scale-2 quick run (unless --scale)")
    _add_json_flag(run_parser, "write output + counters as JSON")
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep",
                                  help="full matrix + figures 2, 5-9")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="halve the input scales")
    sweep_parser.add_argument("--verbose", action="store_true")
    _add_json_flag(sweep_parser, "also dump all figure data as JSON")
    _add_jobs_flag(sweep_parser)
    _add_cache_flags(sweep_parser)
    _add_smoke_flag(sweep_parser, "2-cell cold+warm parallel sweep "
                                  "against a temp cache (CI smoke)")
    sweep_parser.add_argument("--attribution", action="store_true",
                              help="also print per-benchmark cycle and "
                                   "TRT-miss attribution")
    sweep_parser.set_defaults(func=_cmd_sweep)

    tables_parser = sub.add_parser("tables",
                                   help="static tables and the hw model")
    _add_json_flag(tables_parser, "write the rendered tables as JSON")
    tables_parser.set_defaults(func=_cmd_tables)

    trace_parser = sub.add_parser(
        "trace", help="instruction or bytecode execution trace")
    trace_parser.add_argument("benchmark", choices=BENCHMARK_ORDER)
    trace_parser.add_argument("--engine", choices=("lua", "js"),
                              default="lua")
    trace_parser.add_argument("--config", type=_config_arg,
                              metavar=_config_metavar(),
                              default="baseline")
    trace_parser.add_argument("--scale", type=int, default=2)
    trace_parser.add_argument("--bytecodes", action="store_true",
                              help="trace bytecodes instead of "
                                   "instructions")
    trace_parser.add_argument("--limit", type=int, default=48,
                              help="trace entries kept (tail)")
    trace_parser.add_argument("--max-instructions", type=int,
                              default=200_000)
    _add_json_flag(trace_parser, "write the trace (and bytecode "
                                 "counts) as JSON")
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = sub.add_parser(
        "profile",
        help="telemetry profile: per-opcode hot table, TRT attribution, "
             "optional Chrome trace")
    profile_parser.add_argument(
        "target",
        help="benchmark name (see `tables`) or path to a .lua/.js script")
    profile_parser.add_argument("--engine", choices=("lua", "js"),
                                default=None,
                                help="default: inferred from the target")
    profile_parser.add_argument("--config", type=_config_arg,
                                metavar=_config_metavar(),
                                default=TYPED)
    profile_parser.add_argument("--scale", type=int, default=None,
                                help="input scale (benchmark targets)")
    profile_parser.add_argument("--top", type=int, default=15)
    profile_parser.add_argument("--chrome-trace", metavar="PATH",
                                default=None,
                                help="write a Perfetto-loadable Chrome "
                                     "trace_event JSON file")
    profile_parser.add_argument("--events", metavar="PATH", default=None,
                                help="write the raw event stream as "
                                     "JSON lines")
    profile_parser.add_argument("--buckets", action="store_true",
                                help="also print the per-handler "
                                     "instruction buckets")
    profile_parser.add_argument("--show-output", action="store_true",
                                help="echo the guest program's output")
    _add_smoke_flag(profile_parser, "scale-2 quick profile "
                                    "(unless --scale)")
    _add_json_flag(profile_parser, "write counters + rendered tables "
                                   "as JSON")
    profile_parser.set_defaults(func=_cmd_profile)

    faults_parser = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign + coverage report")
    faults_parser.add_argument("--seed", type=int, default=1234)
    faults_parser.add_argument("--count", type=int, default=None,
                               metavar="N",
                               help="injections per (engine, benchmark, "
                                    "config) cell (default 40)")
    faults_parser.add_argument("--engine", action="append",
                               choices=("lua", "js"), default=None,
                               help="repeatable; default: both engines")
    faults_parser.add_argument("--benchmark", action="append",
                               choices=BENCHMARK_ORDER, default=None,
                               help="repeatable; default: all benchmarks")
    faults_parser.add_argument("--quick", action="store_true",
                               help="halve the input scales")
    faults_parser.add_argument("--verbose", action="store_true")
    _add_jobs_flag(faults_parser)
    _add_json_flag(faults_parser, "write the full campaign report")
    _add_cache_flags(faults_parser)
    _add_smoke_flag(faults_parser,
                    "tiny fixed-seed campaign at 1 and N jobs; asserts "
                    "determinism and typed > baseline tag-plane "
                    "detection (CI smoke)")
    faults_parser.set_defaults(func=_cmd_faults)

    bench_parser = sub.add_parser(
        "bench", help="performance gate against a committed baseline")
    bench_sub = bench_parser.add_subparsers(dest="bench_command",
                                            required=True)
    cache_parser = bench_sub.add_parser(
        "cache", help="inspect/verify the persistent result cache")
    cache_parser.add_argument("--verify", action="store_true",
                              help="decode every entry; quarantine "
                                   "damaged ones to <cache>/corrupt/")
    cache_parser.add_argument("--no-quarantine", action="store_true",
                              help="report damaged entries but leave "
                                   "them in place")
    _add_cache_flags(cache_parser)
    cache_parser.set_defaults(func=_cmd_bench)
    for name, description in (
            ("baseline", "run the sweep and write the baseline metrics"),
            ("check", "run the sweep and fail on metric drift")):
        cmd = bench_sub.add_parser(name, help=description)
        _add_jobs_flag(cmd)
        _add_cache_flags(cmd)
        if name == "check":
            _add_smoke_flag(cmd, "only verify the committed baseline "
                                 "loads under the current schema "
                                 "version (no sweep)")
        if name == "baseline":
            cmd.add_argument("--out", metavar="PATH",
                             default="benchmarks/results/baseline.json")
        else:
            cmd.add_argument("--baseline", metavar="PATH",
                             default="benchmarks/results/baseline.json")
            cmd.add_argument("--tolerance", type=float, default=0.02,
                             help="relative tolerance for speedups and "
                                  "instruction/cycle counts")
            cmd.add_argument("--abs-tolerance", type=float, default=0.05,
                             help="absolute tolerance for MPKI and "
                                  "hit-rate metrics")
            cmd.add_argument("--host-floor-json", metavar="PATH",
                             help="write the advisory host-throughput "
                                  "floor comparison as JSON (CI "
                                  "uploads it)")
        cmd.set_defaults(func=_cmd_bench)
    slo_parser = bench_sub.add_parser(
        "slo", help="re-check a saved BENCH_serve.json against the "
                    "serving SLO")
    slo_parser.add_argument("--report", metavar="PATH",
                            default="BENCH_serve.json",
                            help="serve-load artifact to check")
    _add_slo_flags(slo_parser)
    _add_chaos_slo_flags(slo_parser)
    slo_parser.set_defaults(func=_cmd_bench)

    serve_parser = sub.add_parser(
        "serve",
        help="persistent execution daemon: warm workers behind a "
             "localhost socket (see docs/API.md)")
    serve_parser.add_argument("--socket", metavar="PATH", default=None,
                              help="unix socket path (default: "
                                   "$REPRO_SERVE_SOCKET or a per-user "
                                   "temp path)")
    serve_parser.add_argument("--host", default=None,
                              help="TCP mode bind host (with --port; "
                                   "default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=None,
                              metavar="N",
                              help="TCP mode port (0 picks a free one)")
    serve_parser.add_argument("--queue-depth", type=int, default=32,
                              metavar="N",
                              help="pending requests before busy "
                                   "rejection")
    serve_parser.add_argument("--deadline", type=float, default=None,
                              metavar="SECONDS",
                              help="default per-request deadline")
    serve_parser.add_argument("--warm-engine", action="append",
                              choices=("lua", "js"), default=None,
                              help="repeatable; interpreters assembled "
                                   "at worker fork (default: both)")
    serve_parser.add_argument("--warm-config", action="append",
                              type=_config_arg,
                              metavar=_config_metavar(), default=None,
                              help="repeatable; default: all "
                                   "registered configs")
    serve_parser.add_argument("--verbose", action="store_true")
    _add_jobs_flag(serve_parser, help_text="warm worker processes "
                                           "(default 2; 0 runs requests "
                                           "inline)")
    _add_cache_flags(serve_parser)
    _add_smoke_flag(serve_parser,
                    "acceptance smoke: subprocess daemon, 3 concurrent "
                    "clients, cache-hit path, SIGTERM drain (CI)")
    _add_json_flag(serve_parser, "write the smoke report as JSON")
    serve_parser.set_defaults(func=_cmd_serve)

    route_parser = sub.add_parser(
        "route",
        help="consistent-hash front router over N serve shards "
             "(see docs/SERVING.md)")
    route_parser.add_argument("--shard", action="append",
                              metavar="ADDR", default=None,
                              help="repeatable; an existing shard at "
                                   "unix:/path, /path or host:port")
    route_parser.add_argument("--shards", type=int, default=None,
                              metavar="N",
                              help="spawn and own N serve shard "
                                   "subprocesses (collision-free "
                                   "sockets, shared cache root)")
    route_parser.add_argument("--socket", metavar="PATH", default=None,
                              help="router socket path ('auto' or "
                                   "unset picks a collision-free temp "
                                   "path)")
    route_parser.add_argument("--host", default=None,
                              help="TCP mode bind host (with --port; "
                                   "default 127.0.0.1)")
    route_parser.add_argument("--port", type=int, default=None,
                              metavar="N",
                              help="TCP mode port (0 picks a free one)")
    route_parser.add_argument("--replicas", type=int, default=128,
                              metavar="N",
                              help="virtual nodes per shard on the "
                                   "hash ring")
    route_parser.add_argument("--health-interval", type=float,
                              default=2.0, metavar="SECONDS",
                              help="seconds between shard health "
                                   "probes")
    route_parser.add_argument("--retries", type=int, default=2,
                              metavar="N",
                              help="per-shard busy retries (honouring "
                                   "retry_after) before failover")
    route_parser.add_argument("--queue-depth", type=int, default=32,
                              metavar="N",
                              help="queue depth of spawned shards")
    route_parser.add_argument("--deadline", type=float, default=None,
                              metavar="SECONDS",
                              help="default per-request deadline of "
                                   "spawned shards")
    route_parser.add_argument("--warm-engine", action="append",
                              choices=("lua", "js"), default=None,
                              help="repeatable; warm engines of "
                                   "spawned shards (default: lua)")
    route_parser.add_argument("--warm-config", action="append",
                              type=_config_arg,
                              metavar=_config_metavar(), default=None,
                              help="repeatable; warm configs of "
                                   "spawned shards")
    route_parser.add_argument("--no-supervise", action="store_true",
                              help="do not respawn spawned shards "
                                   "that die (default: supervise "
                                   "owned shards with backoff + "
                                   "circuit breaker)")
    route_parser.add_argument("--attempt-timeout", type=float,
                              default=None, dest="attempt_timeout",
                              metavar="SECONDS",
                              help="per-shard-attempt timeout: a "
                                   "stalled shard costs at most this "
                                   "before re-dispatch (default: the "
                                   "full forward timeout)")
    route_parser.add_argument("--quorum", type=int, default=None,
                              metavar="N",
                              help="healthy shards below which new "
                                   "work is shed lowest-priority "
                                   "first (default: a majority)")
    route_parser.add_argument("--verbose", action="store_true")
    _add_jobs_flag(route_parser, help_text="warm workers per spawned "
                                           "shard (default 1)")
    _add_cache_flags(route_parser)
    route_parser.set_defaults(func=_cmd_route)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="synthetic run/bench/sweep traffic against the serve "
             "tier; writes BENCH_serve.json and holds the SLO gate")
    loadgen_parser.add_argument("--qps", type=float, default=None,
                                help="target offered load "
                                     "(default 10)")
    loadgen_parser.add_argument("--duration", type=float, default=None,
                                metavar="SECONDS",
                                help="offered-load window (default 8)")
    loadgen_parser.add_argument("--keys", type=int, default=None,
                                metavar="N",
                                help="distinct request keys in the "
                                     "population (default 16)")
    loadgen_parser.add_argument("--zipf", type=float, default=None,
                                metavar="S",
                                help="popularity skew: rank r drawn "
                                     "~ 1/(r+1)^S (default 1.1)")
    loadgen_parser.add_argument("--mix", type=_mix_arg, default=None,
                                metavar="OP=W,...",
                                help="op mix, e.g. run=0.6,bench=0.4 "
                                     "(normalised; default "
                                     "run=0.55,bench=0.40,sweep=0.05)")
    loadgen_parser.add_argument("--engine", action="append",
                                choices=("lua", "js"), default=None,
                                help="repeatable; population engines "
                                     "(default: lua)")
    loadgen_parser.add_argument("--config", action="append",
                                type=_config_arg,
                                metavar=_config_metavar(),
                                default=None,
                                help="repeatable; population configs "
                                     "(default: all registered)")
    loadgen_parser.add_argument("--seed", type=int, default=None,
                                help="population + schedule seed "
                                     "(default 1234)")
    loadgen_parser.add_argument("--threads", type=int, default=None,
                                metavar="N",
                                help="client threads (default 16)")
    loadgen_parser.add_argument("--sample", type=int, default=None,
                                metavar="N",
                                help="replies identity-checked against "
                                     "in-process execution (default 3)")
    loadgen_parser.add_argument("--timeout", type=float, default=None,
                                metavar="SECONDS",
                                help="per-request client timeout "
                                     "(default 120)")
    loadgen_parser.add_argument("--socket", metavar="PATH",
                                default=None,
                                help="target router/daemon socket "
                                     "(default: self-boot with "
                                     "--smoke)")
    loadgen_parser.add_argument("--host", default=None)
    loadgen_parser.add_argument("--port", type=int, default=None,
                                metavar="N")
    loadgen_parser.add_argument("--shards", type=int, default=None,
                                metavar="N",
                                help="shards of the self-booted "
                                     "--smoke tier (default 2)")
    loadgen_parser.add_argument("--no-drain", action="store_true",
                                help="skip the drain check (leaves an "
                                     "external target running; the "
                                     "default drain check stops it)")
    loadgen_parser.add_argument("--router-log", metavar="PATH",
                                default=None,
                                help="write repro.serve tier logs to "
                                     "PATH (CI uploads this)")
    _add_slo_flags(loadgen_parser)
    _add_jobs_flag(loadgen_parser, help_text="warm workers per "
                                             "self-booted shard "
                                             "(default 1)")
    _add_cache_flags(loadgen_parser)
    _add_smoke_flag(loadgen_parser,
                    "self-boot a 2-shard routed tier over a throwaway "
                    "shared cache and gate it (CI serve-load job); "
                    "writes BENCH_serve.json by default")
    _add_json_flag(loadgen_parser, "write the stamped serve-load "
                                   "artifact (BENCH_serve.json)")
    loadgen_parser.set_defaults(func=_cmd_loadgen)

    chaos_parser = sub.add_parser(
        "chaos",
        help="replay a seed-deterministic fault schedule against a "
             "supervised routed tier under load and gate the chaos "
             "SLO (zero lost/duplicated, bounded MTTR)")
    chaos_parser.add_argument("--qps", type=float, default=None,
                              help="offered load (requests per second)")
    chaos_parser.add_argument("--duration", type=float, default=None,
                              help="load window in seconds")
    chaos_parser.add_argument("--keys", type=int, default=None,
                              help="distinct (benchmark, scale) work "
                                   "keys in the population")
    chaos_parser.add_argument("--threads", type=int, default=None,
                              help="concurrent client connections")
    chaos_parser.add_argument("--timeout", type=float, default=None,
                              help="per-request client timeout")
    chaos_parser.add_argument("--config", action="append", default=None,
                              metavar="NAME", choices=sorted(GATE_CONFIGS),
                              help="restrict traffic to these configs "
                                   "(repeatable)")
    chaos_parser.add_argument("--seed", type=int, default=None,
                              help="fault-schedule + traffic seed "
                                   "(default 4242; same seed, same "
                                   "schedule)")
    chaos_parser.add_argument("--shards", type=int, default=None,
                              help="shards in the self-booted tier "
                                   "(default 2)")
    chaos_parser.add_argument("--faults", metavar="KINDS", default=None,
                              help="comma-separated fault kinds: kill, "
                                   "stall, blackhole, cache_corrupt "
                                   "(default kill,stall)")
    chaos_parser.add_argument("--stall-seconds", type=float,
                              default=None, dest="stall_seconds",
                              help="SIGSTOP duration for stall faults")
    chaos_parser.add_argument("--blackhole-seconds", type=float,
                              default=None, dest="blackhole_seconds",
                              help="black-holed socket duration")
    chaos_parser.add_argument("--attempt-timeout", type=float,
                              default=None, dest="attempt_timeout",
                              help="per-attempt router timeout that "
                                   "bounds a stalled shard (default 2)")
    chaos_parser.add_argument("--recovery-timeout", type=float,
                              default=None, dest="recovery_timeout",
                              help="max seconds to wait for the ring "
                                   "to return to full strength")
    chaos_parser.add_argument("--log-dir", metavar="DIR", default=None,
                              dest="log_dir",
                              help="keep shard logs under DIR (CI "
                                   "uploads these)")
    chaos_parser.add_argument("--router-log", metavar="PATH",
                              default=None,
                              help="write repro.serve tier logs to "
                                   "PATH (CI uploads this)")
    _add_chaos_slo_flags(chaos_parser)
    _add_cache_flags(chaos_parser)
    _add_smoke_flag(chaos_parser,
                    "pinned-seed CI run: 2 shards, kill + stall "
                    "mid-load, throwaway shared cache; writes "
                    "BENCH_chaos.json by default")
    _add_json_flag(chaos_parser, "write the stamped chaos artifact "
                                 "(BENCH_chaos.json)")
    chaos_parser.set_defaults(func=_cmd_chaos)

    submit_parser = sub.add_parser(
        "submit",
        help="submit work to a running serve daemon")
    submit_parser.add_argument(
        "target", nargs="?", default=None,
        help="benchmark name, path to a .lua/.js script, '-' for "
             "stdin, or inline source text")
    submit_parser.add_argument("--engine", choices=("lua", "js"),
                               default=None,
                               help="default: inferred from the target")
    submit_parser.add_argument("--config", type=_config_arg,
                               metavar=_config_metavar(),
                               default=BASELINE)
    submit_parser.add_argument("--scale", type=int, default=None)
    submit_parser.add_argument("--sweep", action="store_true",
                               help="submit a full-matrix sweep instead "
                                    "of a single target")
    submit_parser.add_argument("--deadline", type=float, default=None,
                               metavar="SECONDS",
                               help="wall-clock deadline for this "
                                    "request")
    submit_parser.add_argument("--priority", type=int, default=None,
                               metavar="N",
                               help="lower runs first (default 5)")
    submit_parser.add_argument("--socket", metavar="PATH", default=None)
    submit_parser.add_argument("--host", default=None)
    submit_parser.add_argument("--port", type=int, default=None,
                               metavar="N")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               metavar="SECONDS",
                               help="client-side socket timeout")
    submit_parser.add_argument("--status", action="store_true",
                               help="print daemon statistics and exit")
    submit_parser.add_argument("--drain", action="store_true",
                               help="ask the daemon to drain and exit")
    submit_parser.add_argument("--ping", action="store_true",
                               help="liveness + schema-version probe")
    submit_parser.add_argument("--verbose", action="store_true",
                               help="print streamed events to stderr")
    _add_jobs_flag(submit_parser, help_text="worker shards for a "
                                            "--sweep request (server "
                                            "side)")
    _add_smoke_flag(submit_parser, "scale-2 submission (unless --scale)")
    _add_json_flag(submit_parser, "write the result payload as JSON")
    submit_parser.set_defaults(func=_cmd_submit)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
